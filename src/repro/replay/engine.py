"""Batched trace replay: the execution-model change behind `--engine replay`.

Two engines re-execute a recorded trace against a freshly built backend:

* **generic** — dispatches every event to the same seam methods the
  recorder wrapped (``hierarchy.load``, ``space.write``, ``wal.append``,
  ...). Always available, always exact; it skips only the structure
  layer (hash probing, key encoding), which is what a trace makes
  redundant.
* **fast** — for the single-core PAX shape, a straight-line interpreter
  over the columnar event arrays. One Python loop advances cache tag
  dictionaries, the device's HBM/undo/write-back state, CXL link
  bandwidth mirrors and the simulated clock directly, with stat counters
  bound as locals and access-latency histogram samples buffered for a
  batched (numpy-accelerated) settle. It reproduces the per-access
  path's floating-point arithmetic operation for operation, so
  ``sim_ns``, every stat counter, histogram moments and final pool bytes
  are *byte-identical* — proven by the golden-equivalence tests.

The fast engine bails to the generic seams for anything outside its
proven envelope (multi-line accesses, ``persist()``, a non-empty device
write-back buffer) and resumes when the device is quiescent again; the
per-access path stays the executable spec (docs/performance.md).
"""

from repro.cache.coherence import DirectoryEntry
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.line import CacheLine
from repro.cache.replacement import LruPolicy
from repro.core.hbm import HbmCache
from repro.cxl.adapter import BusOp
from repro.cxl.link import CxlLink
from repro.cxl.messages import DATA_BYTES, HEADER_BYTES
from repro.cxl.port import DevicePort
from repro.errors import AddressError, ProtocolError, TraceError
from repro.libpax.machine import PaxHome, PaxMachine
from repro.pm.log import ENTRY_SIZE
from repro.replay import format as fmt
from repro.replay.equivalence import structure_stat_groups
from repro.replay._np import HAVE_NUMPY, np
from repro.replay.recorder import _resolve
from repro.util.stats import Histogram

from collections import OrderedDict
from itertools import islice

_RESERVOIR = Histogram.RESERVOIR_SIZE

# Event kinds as module constants: the fast loop compares against these
# once or twice per event and a global load beats two attribute hops.
_LOAD = fmt.LOAD
_STORE = fmt.STORE
_MARK = fmt.MARK
_PAYLOAD_KINDS = fmt.PAYLOAD_KINDS

#: Below this many buffered samples the plain record() loop beats numpy
#: call overhead; above it the vectorized settle wins by ~10x.
_NP_SETTLE_MIN = 256

#: Drain-credit saturation window (bytes). Credits accrue at ~2 GB/s of
#: simulated time with no cap, while consumption is one log entry or
#: cache line per drain; once both credits exceed _CREDIT_SAT the fast
#: loop stops mirroring the per-event accrual arithmetic and accrues
#: lazily: every ``credit >= entry`` comparison is decided identically
#: on both sides (both values are millions of bytes above the 96-byte
#: threshold, and lazy-vs-eager float rounding differs by well under a
#: byte), so behaviour — drain timing, hence every counter and sim_ns —
#: is unchanged. The credits themselves are scratch accounting, not part
#: of the observable machine state. If a credit ever sinks back below
#: _CREDIT_LOW the loop returns to exact per-event accrual.
_CREDIT_SAT = float(1 << 24)
_CREDIT_LOW = float(1 << 20)


class ReplayResult:
    """What one replay produced (see :func:`replay_trace`)."""

    __slots__ = ("backend", "engine", "events", "sim_ns", "marks",
                 "wall_s", "wall_s_timed")

    def __init__(self, backend, engine, events, sim_ns, marks,
                 wall_s, wall_s_timed):
        self.backend = backend
        self.engine = engine
        self.events = events
        self.sim_ns = sim_ns
        self.marks = marks          # mark code -> sim_ns at the mark
        self.wall_s = wall_s        # whole-trace wall clock (None w/o stopwatch)
        self.wall_s_timed = wall_s_timed   # wall after MARK_TIMED

    @property
    def sim_ns_timed(self):
        """Simulated ns consumed after the timed-phase mark."""
        start = self.marks.get(fmt.MARK_TIMED)
        if start is None:
            return self.sim_ns
        return self.sim_ns - start


class _Seams:
    """Bound replay entry points on a fresh backend (generic engine)."""

    __slots__ = ("backend", "machine", "hier", "load", "store", "wbl",
                 "persist", "space_read", "space_write", "clwb", "sfence",
                 "wal_append", "wal_reset")

    def __init__(self, backend):
        machine = backend.machine
        self.backend = backend
        self.machine = machine
        self.hier = machine.hierarchy
        self.load = self.hier.load
        self.store = self.hier.store
        self.wbl = self.hier.writeback_line
        self.persist = getattr(machine, "persist", None)
        space = getattr(machine, "space", None)
        self.space_read = None if space is None else space.read
        self.space_write = None if space is None else space.write
        flush = getattr(backend, "_flush", None)
        self.clwb = None if flush is None else flush.clwb
        self.sfence = None if flush is None else flush.sfence
        wal = getattr(backend, "_wal", None)
        self.wal_append = None if wal is None else wal.append
        self.wal_reset = None if wal is None else wal.reset


def _step(seams, kind, aux, addr, size, payload):
    """Re-issue one non-MARK event through the real seam methods."""
    if kind == fmt.LOAD:
        seams.load(aux, addr, size)
    elif kind == fmt.STORE:
        seams.store(aux, addr, payload)
    elif kind == fmt.RAW_READ:
        seams.space_read(addr, size)
    elif kind == fmt.RAW_WRITE:
        seams.space_write(addr, payload)
    elif kind == fmt.CLWB:
        seams.clwb(addr, size)
    elif kind == fmt.SFENCE:
        seams.sfence()
    elif kind == fmt.WBL:
        seams.wbl(addr)
    elif kind == fmt.PERSIST:
        seams.persist()
    elif kind == fmt.WAL_APPEND:
        seams.wal_append(aux >> 1, addr, payload, bool(aux & 1))
    elif kind == fmt.WAL_RESET:
        seams.wal_reset()
    else:
        raise TraceError("unknown trace event kind %d" % kind)


def fast_eligible(backend):
    """True when the fast interpreter covers this backend exactly.

    The envelope is deliberately narrow — everything outside it silently
    uses the generic engine, which is exact for any backend the recorder
    accepts: single-core CXL.cache PAX, LRU everywhere, no tracers, no
    lossy link, no store hooks.
    """
    machine = backend.machine
    if type(machine) is not PaxMachine:
        return False
    if getattr(machine, "protocol", None) != "cxl.cache":
        return False
    if type(machine.link) is not CxlLink:
        return False
    if type(machine.port) is not DevicePort:
        return False
    if getattr(machine, "store_hook", None) is not None:
        return False
    if getattr(machine, "tracer", None) is not None:
        return False
    hier = machine.hierarchy
    if type(hier) is not CacheHierarchy:
        return False
    if hier.num_cores != 1 or hier.tracer is not None:
        return False
    # Miss-path mechanisms (repro.cache.mechanisms) change the latency
    # arithmetic at both caching sites; the fast interpreter models
    # neither, so any configured stack routes to the generic engine.
    if hier.mechanisms is not None or machine.device.mech is not None:
        return False
    if len(hier._homes) != 1 or type(hier._homes[0][2]) is not PaxHome:
        return False
    core = hier._cores[0]
    for cache in (core.l1, core.l2, hier._llc):
        for policy in cache._policies:
            if type(policy) is not LruPolicy:
                return False
    device = machine.device
    if type(device.hbm) is not HbmCache:
        return False
    if device.undo.tracer is not None:
        return False
    # Exactly the device's background tick on the clock: a foreign
    # callback would observe (and depend on) every advance.
    if machine.clock._callbacks != [machine._tick]:
        return False
    return True


def replay_trace(trace, backend, engine="auto", stopwatch=None):
    """Re-execute ``trace`` against a freshly built ``backend``.

    ``backend`` must be constructed exactly as the recorded one was (same
    config, same seed): construction is the trace's implicit initial
    state. ``engine`` is ``"auto"``, ``"fast"`` or ``"generic"``;
    ``"auto"`` picks fast when :func:`fast_eligible` holds. ``stopwatch``
    is an optional zero-argument monotonic-seconds callable (supplied by
    perfbench, which owns wall-clock concerns) used to time the replay.

    Returns a :class:`ReplayResult`; afterwards the backend's machine
    state matches the recorded run byte for byte, and the footer's
    structure-layer deltas have been applied to the backend's stats.
    """
    if engine not in ("auto", "fast", "generic"):
        raise TraceError("unknown replay engine %r" % engine)
    use_fast = engine == "fast" or (engine == "auto"
                                    and fast_eligible(backend))
    if engine == "fast" and not fast_eligible(backend):
        raise TraceError("backend %r is outside the fast-engine envelope"
                         % getattr(backend, "name", backend))
    start_wall = stopwatch() if stopwatch is not None else None
    if use_fast:
        marks, mark_walls = _replay_fast(trace, backend, stopwatch)
        chosen = "fast"
    else:
        marks, mark_walls = _replay_generic(trace, backend, stopwatch)
        chosen = "generic"
    end_wall = stopwatch() if stopwatch is not None else None
    _apply_footer(trace.footer, backend)
    wall_s = None if start_wall is None else end_wall - start_wall
    timed_wall = None
    if end_wall is not None and fmt.MARK_TIMED in mark_walls:
        timed_wall = end_wall - mark_walls[fmt.MARK_TIMED]
    return ReplayResult(backend, chosen, len(trace),
                        backend.machine.clock.now_ns, marks,
                        wall_s, timed_wall)


def _apply_footer(footer, backend):
    """Restore structure-layer accounting skipped during replay."""
    groups = structure_stat_groups(backend)
    for path, deltas in footer.get("counter_deltas", {}).items():
        group = groups.get(path)
        if group is None:
            raise TraceError(
                "trace footer names stat group %r the backend lacks" % path)
        for name, delta in deltas.items():
            group.counter(name).value += delta
    for path, delta in footer.get("scalar_deltas", {}).items():
        spot = _resolve(backend, path)
        if spot is None:
            raise TraceError(
                "trace footer names scalar %r the backend lacks" % path)
        setattr(spot[0], spot[1], getattr(spot[0], spot[1]) + delta)


def _replay_generic(trace, backend, stopwatch):
    """Dispatch every event through the real seam methods."""
    seams = _Seams(backend)
    clock = backend.machine.clock
    marks = {}
    mark_walls = {}
    for kind, aux, addr, size, payload in trace.events():
        if kind == fmt.MARK:
            marks[aux] = clock.now_ns
            if stopwatch is not None:
                mark_walls[aux] = stopwatch()
        else:
            _step(seams, kind, aux, addr, size, payload)
    return marks, mark_walls


def _flush_access_hist(hist, samples):
    """Apply buffered latency samples to ``hist``, exactly.

    Reproduces the sequential float arithmetic of per-sample
    :meth:`Histogram.record` calls: ``np.add.accumulate`` computes the
    same left-to-right running sum the scalar loop does (unlike
    ``np.sum``, whose pairwise reduction reassociates), and the rotating
    reservoir slot for the k-th overall sample is ``count % 4096``, so
    only the trailing window of samples can survive.
    """
    n = len(samples)
    if not n:
        return
    if HAVE_NUMPY and n >= _NP_SETTLE_MIN:
        arr = np.asarray(samples, dtype=np.float64)
        acc = np.empty(n + 1, dtype=np.float64)
        acc[0] = hist.total
        acc[1:] = arr
        hist.total = float(np.add.accumulate(acc)[-1])
        acc[0] = hist._sum_sq
        np.multiply(arr, arr, out=acc[1:])
        hist._sum_sq = float(np.add.accumulate(acc)[-1])
        low = float(arr.min())
        high = float(arr.max())
        if low < hist.min:
            hist.min = low
        if high > hist.max:
            hist.max = high
        count0 = hist.count
        hist.count = count0 + n
        reservoir = hist._reservoir
        idx = 0
        while idx < n and len(reservoir) < _RESERVOIR:
            reservoir.append(samples[idx])
            idx += 1
        rem = n - idx
        if rem:
            base = count0 + idx + 1
            for j in range(rem - _RESERVOIR if rem > _RESERVOIR else 0, rem):
                reservoir[(base + j) % _RESERVOIR] = samples[idx + j]
    else:
        record = hist.record
        for value in samples:
            record(value)

def _replay_fast(trace, backend, stopwatch):
    """The straight-line single-core PAX interpreter.

    One Python loop over the columnar arrays handles single-line loads,
    stores and marks with every piece of hot state — cache tag dicts, LRU
    orders, directory entries, device HBM/undo mirrors, link bandwidth
    backlog, the simulated clock — bound as locals, mirroring the exact
    floating-point operation order of the per-access walk (hierarchy
    ``_hit_path``/``_miss_path``, ``DevicePort._transact``,
    ``BandwidthLimiter.submit``, ``PaxDevice`` handlers and
    ``background_tick``). Anything else — multi-line accesses, persists,
    raw space traffic, a non-empty device write-back buffer — settles the
    mirrors back into the objects and delegates single events to the real
    seam methods until the device is quiescent again.

    The mirrored-state invariant: while the inner loop runs, the device
    write-back buffer is empty and the persist pipeline idle, so the only
    background work per clock advance is credit accrual plus the undo
    drain — both inlined below exactly as ``background_tick`` does them.
    """
    seams = _Seams(backend)
    machine = backend.machine
    clock = machine.clock
    hier = machine.hierarchy
    core = hier._cores[0]
    device = machine.device
    undo = device.undo
    wb = device.writeback
    hbm = device.hbm
    link = machine.link
    port = machine.port
    pipeline = device.pipeline
    pool = device.pool

    kinds_l = trace.kinds
    aux_l = trace.aux
    addrs_l = trace.addrs
    sizes_l = trace.sizes
    heap = trace.payload
    n = len(kinds_l)
    marks = {}
    mark_walls = {}
    i = 0
    p = 0   # payload heap cursor; advances for every payload-carrying event

    # Per-event class (0 = single-line load, 1 = single-line store,
    # 2 = everything else), line address and in-line offset, precomputed
    # in one vectorized pass so the interpreter does one list index where
    # it would otherwise do three indexes plus the address arithmetic.
    # Memoized on the trace: "record once, replay many" pays the decode
    # exactly once.
    columns = trace._fast_columns
    if columns is None:
        if HAVE_NUMPY and n >= 1024:
            ka = np.asarray(kinds_l, dtype=np.uint8)
            aa = np.asarray(addrs_l, dtype=np.int64)
            sa = np.asarray(sizes_l, dtype=np.int64)
            off = aa & 63
            single = (sa > 0) & (off + sa <= 64)
            cls = np.full(n, 2, dtype=np.uint8)
            cls[(ka == _LOAD) & single] = 0
            cls[(ka == _STORE) & single] = 1
            cls_l = cls.tolist()
            laddr_l = (aa - off).tolist()
            off_l = off.tolist()
        else:
            cls_l = []
            laddr_l = []
            off_l = []
            for kind, addr, size in zip(kinds_l, addrs_l, sizes_l):
                offset = addr & 63
                off_l.append(offset)
                laddr_l.append(addr - offset)
                if 0 < size <= 64 - offset:
                    cls_l.append(0 if kind == _LOAD
                                 else (1 if kind == _STORE else 2))
                else:
                    cls_l.append(2)
        columns = (cls_l, laddr_l, off_l)
        trace._fast_columns = columns
    else:
        cls_l, laddr_l, off_l = columns

    # -- immutable model parameters --------------------------------------
    l1_ns = hier._l1_ns
    l2_ns = hier._l2_ns
    llc_ns = hier._llc_ns
    one_way = link.one_way_ns
    config = device.config
    proc_ns = config.device_processing_ns
    log_bps = config.log_drain_bps
    wb_bps = config.writeback_drain_bps
    hbm_ns = device._lat.media.hbm_ns
    pm_read_ns = device._lat.media.pm_read_ns
    pool_delta = pool.data_base - device.vpm_base
    data_base = pool.data_base
    data_end = pool.data_base + pool.data_size
    hbm_cap = hbm.capacity_lines

    # -- cache geometry ---------------------------------------------------
    l1 = core.l1
    l2 = core.l2
    llc = hier._llc
    l1_sets = l1._sets
    l2_sets = l2._sets
    llc_sets = llc._sets
    l1_orders = [policy._order for policy in l1._policies]
    l2_orders = [policy._order for policy in l2._policies]
    llc_orders = [policy._order for policy in llc._policies]
    l1_mask = l1._set_mask
    l2_mask = l2._set_mask
    llc_mask = llc._set_mask
    l1_ways = l1.ways
    l2_ways = l2.ways
    llc_ways = llc.ways
    dir_entries = hier._dir_entries
    dir_get = dir_entries.get

    # Merged per-set mirrors: one OrderedDict (addr -> line, LRU-ordered)
    # stands in for the tag dict + LRU order dict pair, halving the dict
    # traffic on every probe, fill and eviction. The line objects are
    # shared with the real cache, so data/dirty mutations need no copy;
    # settle() writes the tag and order structures back in place, and
    # resync() rebuilds the mirrors after any delegated event.
    l1m = [None] * len(l1_sets)
    l2m = [None] * len(l2_sets)
    llcm = [None] * len(llc_sets)
    cache_levels = ((l1_sets, l1_orders, l1m),
                    (l2_sets, l2_orders, l2m),
                    (llc_sets, llc_orders, llcm))

    def rebuild_caches():
        for sets, orders, mirrors in cache_levels:
            for index, order in enumerate(orders):
                bucket = sets[index]
                mirrors[index] = OrderedDict(
                    (addr, bucket[addr]) for addr in order)

    def settle_caches():
        for sets, orders, mirrors in cache_levels:
            for index, mirror in enumerate(mirrors):
                bucket = sets[index]
                bucket.clear()
                bucket.update(mirror)
                order = orders[index]
                order.clear()
                for addr in mirror:
                    order[addr] = True

    rebuild_caches()

    # -- bound stat counters (hot-path-stat-lookup rule) -------------------
    c_loads = hier._c_loads
    c_stores = hier._c_stores
    c_l1_hits = hier._c_l1_hits
    c_l2_hits = hier._c_l2_hits
    c_llc_hits = hier._c_llc_hits
    c_mem_fetches = hier._c_memory_fetches
    c_upgrades = hier._c_upgrades
    c_l1_evictions = hier._c_l1_evictions
    c_l2_evictions = hier._c_l2_evictions
    c_llc_writebacks = hier._c_llc_writebacks
    c_l1_hit = l1._c_hits
    c_l1_miss = l1._c_misses
    c_l1_evic = l1._c_evictions
    c_l1_inval = l1._c_invalidations
    c_l2_hit = l2._c_hits
    c_l2_evic = l2._c_evictions
    c_llc_hit = llc._c_hits
    c_llc_miss = llc._c_misses
    c_llc_evic = llc._c_evictions
    c_llc_inval = llc._c_invalidations
    c_hbm_hits = hbm._c_hits
    c_hbm_misses = hbm._c_misses
    c_hbm_evics = hbm._c_evictions
    c_hbm_invals = hbm._c_invalidations
    c_rd_shared = device._c_rd_shared
    c_rd_own = device._c_rd_own
    c_dirty_evicts = device._c_dirty_evicts
    c_lines_logged = device._c_lines_logged
    c_stalled_evicts = device._c_stalled_evicts
    c_buffer_serves = device._c_buffer_serves
    c_pm_line_reads = device._c_pm_line_reads
    c_transactions = port._c_transactions
    translated = port.adapter._c_translated
    c_tr_read_miss = translated[BusOp.READ_MISS]
    c_tr_write_miss = translated[BusOp.WRITE_MISS]
    c_tr_write_upgrade = translated[BusOp.WRITE_UPGRADE]
    c_tr_evict_dirty = translated[BusOp.EVICT_DIRTY]
    h2d = link._h2d
    d2h = link._d2h
    c_h2d_msgs = link._c_h2d_messages
    c_h2d_bytes = link._c_h2d_bytes
    c_d2h_msgs = link._c_d2h_messages
    c_d2h_bytes = link._c_d2h_bytes
    h2d_rate = h2d._rate
    d2h_rate = d2h._rate
    c_h2d_lim_bytes = h2d._c_bytes
    c_h2d_lim_transfers = h2d._c_transfers
    c_h2d_stalled = h2d._c_stalled
    h_h2d_delay = h2d._h_queue_delay
    c_d2h_lim_bytes = d2h._c_bytes
    c_d2h_lim_transfers = d2h._c_transfers
    c_d2h_stalled = d2h._c_stalled
    h_d2h_delay = d2h._h_queue_delay
    access_hist = hier._h_access_ns

    # -- stable mutable structures and bound methods -----------------------
    hbm_lines = hbm._lines
    hbm_move = hbm_lines.move_to_end
    pending = undo._pending
    wb_buffer = wb._buffer
    drain_one = undo.drain_one
    note_modification = undo.note_modification
    buffer_line = wb.buffer_line
    wb_drain = wb.drain_budget
    pm_read = pool.device.read

    # Floating-point mirrors settled back into the objects whenever the
    # fast loop hands control to the per-access path.
    now = clock._now_ns
    undo_credit = undo._drain_credit
    wb_credit = wb._drain_credit
    h2d_backlog = h2d._backlog_bytes
    h2d_last = h2d._last_ns
    d2h_backlog = d2h._backlog_bytes
    d2h_last = d2h._last_ns
    credits_live = True   # False = saturated, accruing lazily from anchors
    u_anchor = now
    w_anchor = now
    abuf = []   # deferred access_ns histogram samples, in event order
    abuf_append = abuf.append

    # Flat mirror of the single-core directory (line_addr -> MESI letter):
    # one dict probe replaces entry lookup + per-entry states dict. Kept
    # in sync by every transition the fast loop performs; rebuilt from the
    # real directory whenever a delegated event may have moved lines.
    states0 = {}
    states0_get = states0.get

    def rebuild_states0():
        states0.clear()
        for line_addr, entry in dir_entries.items():
            state = entry.states.get(0)
            if state is not None:
                states0[line_addr] = state

    rebuild_states0()

    # Hot counters accumulated as local ints and flushed in settle();
    # integer addition commutes, so batching is exact.
    n_loads = 0
    n_stores = 0
    n_ul = 0     # ultra-lane loads (count once, fan out in settle)
    n_us = 0     # ultra-lane stores
    n_l1c = 0    # l1 hits (cache-level and hierarchy counters move as one)
    n_l1m = 0    # l1 cache misses
    n_l2c = 0    # l2 hits (both counters)
    n_l1e = 0    # l1 evictions (both counters)
    n_l1i = 0    # l1 cache invalidations (inclusive-eviction back-inval)
    n_l2e = 0    # l2 evictions (both counters)
    n_llcc = 0   # llc hits (both counters)
    n_llcm = 0   # llc cache misses
    n_llci = 0   # llc cache invalidations
    n_llce = 0   # llc cache evictions
    n_llcw = 0   # hierarchy llc_writebacks
    n_upg = 0    # hierarchy upgrades
    n_memf = 0   # hierarchy memory_fetches
    n_h2dm = 0   # link h2d messages
    n_h2db = 0   # link h2d bytes
    n_h2dlb = 0  # h2d limiter bytes
    n_h2dlt = 0  # h2d limiter transfers
    n_d2hm = 0   # link d2h messages
    n_d2hb = 0   # link d2h bytes
    n_d2hlb = 0  # d2h limiter bytes
    n_d2hlt = 0  # d2h limiter transfers
    n_rdo = 0    # device rd_own
    n_rds = 0    # device rd_shared
    n_logd = 0   # device lines_logged
    n_bsrv = 0   # device buffer_serves
    n_hbmh = 0   # hbm hits
    n_hbmm = 0   # hbm misses
    n_hbmi = 0   # hbm invalidations
    n_hbme = 0   # hbm evictions
    n_pmr = 0    # device pm_line_reads
    n_dev = 0    # device dirty_evicts
    n_sev = 0    # device stalled_evicts
    n_trans = 0  # port transactions
    n_trrm = 0   # adapter READ_MISS translations
    n_trwm = 0   # adapter WRITE_MISS translations
    n_trwu = 0   # adapter WRITE_UPGRADE translations
    n_tred = 0   # adapter EVICT_DIRTY translations
    # Set by the device closures whenever an event deposits work into
    # `pending` or `wb_buffer`; lets the saturated-mode tick skip both
    # drain checks on the (overwhelmingly common) events that touch
    # neither. Live mode ignores it — residue can persist across events
    # there, so the checks stay unconditional.
    dev_dirty = False

    def settle():
        nonlocal n_loads, n_stores, n_ul, n_us
        nonlocal n_l1c, n_l1m, n_l2c
        nonlocal n_l1e, n_l1i, n_l2e, n_llcc
        nonlocal n_llcm, n_llci, n_llce, n_llcw, n_upg, n_memf
        nonlocal n_h2dm, n_h2db, n_h2dlb, n_h2dlt
        nonlocal n_d2hm, n_d2hb, n_d2hlb, n_d2hlt
        nonlocal n_rdo, n_rds, n_logd, n_bsrv, n_hbmh, n_hbmm, n_hbmi
        nonlocal n_hbme, n_pmr, n_dev, n_sev
        nonlocal n_trans, n_trrm, n_trwm, n_trwu, n_tred
        nonlocal undo_credit, wb_credit, u_anchor, w_anchor
        if not credits_live:
            undo_credit += log_bps * ((now - u_anchor) / 1e9)
            wb_credit += wb_bps * ((now - w_anchor) / 1e9)
            u_anchor = now
            w_anchor = now
        clock._now_ns = now
        undo._drain_credit = undo_credit
        wb._drain_credit = wb_credit
        h2d._backlog_bytes = h2d_backlog
        h2d._last_ns = h2d_last
        d2h._backlog_bytes = d2h_backlog
        d2h._last_ns = d2h_last
        same = n_ul + n_us
        c_loads.value += n_loads + n_ul
        c_stores.value += n_stores + n_us
        hits1 = n_l1c + same
        c_l1_hit.value += hits1
        c_l1_hits.value += hits1
        c_l1_miss.value += n_l1m
        c_l2_hit.value += n_l2c
        c_l2_hits.value += n_l2c
        c_l1_evic.value += n_l1e
        c_l1_evictions.value += n_l1e
        c_l1_inval.value += n_l1i
        c_l2_evic.value += n_l2e
        c_l2_evictions.value += n_l2e
        c_llc_hit.value += n_llcc
        c_llc_hits.value += n_llcc
        c_llc_miss.value += n_llcm
        c_llc_inval.value += n_llci
        c_llc_evic.value += n_llce
        c_llc_writebacks.value += n_llcw
        c_upgrades.value += n_upg
        c_mem_fetches.value += n_memf
        c_h2d_msgs.value += n_h2dm
        c_h2d_bytes.value += n_h2db
        c_h2d_lim_bytes.value += n_h2dlb
        c_h2d_lim_transfers.value += n_h2dlt
        c_d2h_msgs.value += n_d2hm
        c_d2h_bytes.value += n_d2hb
        c_d2h_lim_bytes.value += n_d2hlb
        c_d2h_lim_transfers.value += n_d2hlt
        c_rd_own.value += n_rdo
        c_rd_shared.value += n_rds
        c_lines_logged.value += n_logd
        c_buffer_serves.value += n_bsrv
        c_hbm_hits.value += n_hbmh
        c_hbm_misses.value += n_hbmm
        c_hbm_invals.value += n_hbmi
        c_hbm_evics.value += n_hbme
        c_pm_line_reads.value += n_pmr
        c_dirty_evicts.value += n_dev
        c_stalled_evicts.value += n_sev
        c_transactions.value += n_trans
        c_tr_read_miss.value += n_trrm
        c_tr_write_miss.value += n_trwm
        c_tr_write_upgrade.value += n_trwu
        c_tr_evict_dirty.value += n_tred
        n_loads = n_stores = n_ul = n_us = 0
        n_l1c = n_l1m = n_l2c = 0
        n_l1e = n_l1i = n_l2e = n_llcc = 0
        n_llcm = n_llci = n_llce = n_llcw = n_upg = n_memf = 0
        n_h2dm = n_h2db = n_h2dlb = n_h2dlt = 0
        n_d2hm = n_d2hb = n_d2hlb = n_d2hlt = 0
        n_rdo = n_rds = n_logd = n_bsrv = n_hbmh = n_hbmm = n_hbmi = 0
        n_hbme = n_pmr = n_dev = n_sev = 0
        n_trans = n_trrm = n_trwm = n_trwu = n_tred = 0
        settle_caches()
        _flush_access_hist(access_hist, abuf)
        del abuf[:]

    def resync():
        nonlocal now, undo_credit, wb_credit, credits_live
        nonlocal h2d_backlog, h2d_last, d2h_backlog, d2h_last
        now = clock._now_ns
        undo_credit = undo._drain_credit
        wb_credit = wb._drain_credit
        credits_live = True
        h2d_backlog = h2d._backlog_bytes
        h2d_last = h2d._last_ns
        d2h_backlog = d2h._backlog_bytes
        d2h_last = d2h._last_ns
        rebuild_states0()
        rebuild_caches()

    # One CXL hop each way, mirroring CxlLink.send_* + BandwidthLimiter
    # .submit against the local clock/backlog mirrors.
    def link_h2d(wire):
        nonlocal h2d_backlog, h2d_last, n_h2dm, n_h2db, n_h2dlb, n_h2dlt
        n_h2dm += 1
        n_h2db += wire
        elapsed = now - h2d_last
        if elapsed > 0:
            drained = h2d_backlog - h2d_rate * elapsed / 1e9
            h2d_backlog = drained if drained > 0.0 else 0.0
            h2d_last = now
        delay = h2d_backlog * 1e9 / h2d_rate
        h2d_backlog += wire
        n_h2dlb += wire
        n_h2dlt += 1
        if delay > 0:
            c_h2d_stalled.value += 1
            h_h2d_delay.record(delay)
        return one_way + delay

    def link_d2h(wire):
        nonlocal d2h_backlog, d2h_last, n_d2hm, n_d2hb, n_d2hlb, n_d2hlt
        n_d2hm += 1
        n_d2hb += wire
        elapsed = now - d2h_last
        if elapsed > 0:
            drained = d2h_backlog - d2h_rate * elapsed / 1e9
            d2h_backlog = drained if drained > 0.0 else 0.0
            d2h_last = now
        delay = d2h_backlog * 1e9 / d2h_rate
        d2h_backlog += wire
        n_d2hlb += wire
        n_d2hlt += 1
        if delay > 0:
            c_d2h_stalled.value += 1
            h_d2h_delay.record(delay)
        return one_way + delay

    # PaxDevice message handlers against the same dicts the device owns.
    def device_rd_own(line_addr, need_data):
        pool_addr = line_addr + pool_delta
        if not (data_base <= pool_addr and pool_addr + 64 <= data_end):
            raise AddressError(
                "physical 0x%x is outside this device's vPM range"
                % line_addr)
        nonlocal n_rdo, n_logd, n_bsrv, n_hbmh, n_hbmm, n_hbmi, n_pmr, \
            dev_dirty
        n_rdo += 1
        if undo._logged.get(pool_addr) is None:
            entry = wb_buffer.get(pool_addr)
            old = entry.data if entry is not None else None
            if old is None:
                old = hbm_lines.get(pool_addr)
            if old is None:
                old = pm_read(pool_addr, 64)
            note_modification(pool_addr, old)
            n_logd += 1
            dev_dirty = True
        service = proc_ns
        data = None
        if need_data:
            entry = wb_buffer.get(pool_addr)
            if entry is not None:
                n_bsrv += 1
                data = entry.data
                service = service + 0.0
            else:
                data = hbm_lines.get(pool_addr)
                if data is None:
                    n_hbmm += 1
                    data = pm_read(pool_addr, 64)
                    n_pmr += 1
                    service = service + pm_read_ns
                else:
                    hbm_move(pool_addr)
                    n_hbmh += 1
                    service = service + hbm_ns
        if hbm_lines.pop(pool_addr, None) is not None:
            n_hbmi += 1
        return data, service

    def device_rd_shared(line_addr):
        pool_addr = line_addr + pool_delta
        if not (data_base <= pool_addr and pool_addr + 64 <= data_end):
            raise AddressError(
                "physical 0x%x is outside this device's vPM range"
                % line_addr)
        nonlocal n_rds, n_bsrv, n_hbmh, n_hbmm, n_hbme, n_pmr
        entry = wb_buffer.get(pool_addr)
        if entry is not None:
            n_bsrv += 1
            data = entry.data
            media_ns = 0.0
        else:
            data = hbm_lines.get(pool_addr)
            if data is None:
                n_hbmm += 1
                data = pm_read(pool_addr, 64)
                n_pmr += 1
                media_ns = pm_read_ns
            else:
                hbm_move(pool_addr)
                n_hbmh += 1
                media_ns = hbm_ns
        if hbm_cap > 0:
            hbm_lines[pool_addr] = data
            hbm_move(pool_addr)
            if len(hbm_lines) > hbm_cap:
                hbm_lines.popitem(last=False)
                n_hbme += 1
        n_rds += 1
        return data, proc_ns + media_ns

    def device_dirty_evict(line_addr, data):
        pool_addr = line_addr + pool_delta
        if not (data_base <= pool_addr and pool_addr + 64 <= data_end):
            raise AddressError(
                "physical 0x%x is outside this device's vPM range"
                % line_addr)
        seq = undo._logged.get(pool_addr)
        if seq is None:
            raise ProtocolError(
                "dirty eviction of 0x%x, but the line was never logged "
                "this epoch" % line_addr)
        nonlocal n_dev, n_sev, dev_dirty
        dev_dirty = True
        pumped = buffer_line(pool_addr, data, seq)
        n_dev += 1
        service = proc_ns
        if pumped:
            service += pumped * 1e9 / log_bps
            n_sev += 1
        return service

    # DevicePort._transact for the four bus ops the fast loop meets.
    def acquire_own_nodata(line_addr):
        nonlocal n_trans, n_trwu
        n_trwu += 1
        latency = link_h2d(HEADER_BYTES)
        _data, service = device_rd_own(line_addr, False)
        latency += service
        latency += link_d2h(HEADER_BYTES)   # Go
        n_trans += 1
        return latency

    def acquire_own_data(line_addr):
        nonlocal n_trans, n_trwm
        n_trwm += 1
        latency = link_h2d(HEADER_BYTES)
        data, service = device_rd_own(line_addr, True)
        latency += service
        latency += link_d2h(DATA_BYTES)     # DataResponse
        n_trans += 1
        return data, latency

    def acquire_shared(line_addr):
        nonlocal n_trans, n_trrm
        n_trrm += 1
        latency = link_h2d(HEADER_BYTES)
        data, service = device_rd_shared(line_addr)
        latency += service
        latency += link_d2h(DATA_BYTES)     # DataResponse
        n_trans += 1
        return data, latency

    def writeback_dirty(line_addr, data):
        nonlocal n_trans, n_tred
        n_tred += 1
        latency = link_h2d(DATA_BYTES)      # DirtyEvict carries the line
        service = device_dirty_evict(line_addr, data)
        latency += service
        latency += link_d2h(HEADER_BYTES)   # Go
        n_trans += 1
        return latency

    # Hierarchy _insert_llc, for the miss-path fill (_evict_from_l2 is
    # inlined at its single call site in the fast loop).
    def insert_llc(new_line):
        nonlocal n_llce, n_llcw
        line_addr = new_line.addr
        bucket = llcm[(line_addr >> 6) & llc_mask]
        existing = bucket.get(line_addr)
        if existing is not None:
            existing.data = bytearray(new_line.data)
            existing.dirty = existing.dirty or new_line.dirty
            return 0.0
        victim = None
        if len(bucket) >= llc_ways:
            victim = bucket.popitem(last=False)[1]
            n_llce += 1
        bucket[line_addr] = new_line
        if victim is not None and victim.dirty:
            latency = writeback_dirty(victim.addr, bytes(victim.data))
            n_llcw += 1
            return latency
        return 0.0

    while i < n:
        kind = kinds_l[i]
        if (wb_buffer or pipeline._flights
                or (kind != _LOAD and kind != _STORE and kind != _MARK)):
            # Outside the fast envelope: settle the mirrors, run ONE event
            # through the real seams, resync, and re-evaluate. Device
            # asynchrony (buffer drain, pipelined epochs) advances inside
            # the real clock callbacks until the device is quiescent.
            settle()
            size = sizes_l[i]
            if kind in _PAYLOAD_KINDS:
                payload = heap[p:p + size]
                p += size
            else:
                payload = None
            if kind == _MARK:
                marks[aux_l[i]] = clock._now_ns
                if stopwatch is not None:
                    mark_walls[aux_l[i]] = stopwatch()
            else:
                _step(seams, kind, aux_l[i], addrs_l[i], size, payload)
            i += 1
            resync()
            continue

        # ---- fast inner loop: single-line loads/stores and marks -------
        # A flat zip walks the two always-needed columns at iterator
        # speed; `range` rides along so delegation can resume at `i`.
        prev_addr = -1      # line of the immediately preceding access:
        prev_line = None    # consecutive same-line hits skip every probe
        for c, line_addr, i in zip(islice(cls_l, i, None),
                                   islice(laddr_l, i, None), range(i, n)):
            if c == 2:
                if kinds_l[i] == _MARK:
                    code = aux_l[i]
                    marks[code] = now
                    if stopwatch is not None:
                        mark_walls[code] = stopwatch()
                    p += sizes_l[i]   # skip the label payload
                    continue
                break   # multi-line or non-access event: delegate
            # Same-line store fast path needs M state; for an L1-resident
            # line dirty <=> M (M is only entered by a store, and every
            # store sets dirty; E/S fills are clean), so the line's own
            # flag answers without a states0 lookup.
            if line_addr == prev_addr and (c == 0 or prev_line.dirty):
                # Same line as the previous access: it is still
                # L1-resident and already MRU (anything that could evict
                # or demote it resets prev_addr), so the whole walk
                # collapses to L1-hit accounting. A store additionally
                # needs M state; an M line is dirty already, so the flag
                # needs no write either.
                if not credits_live:
                    # Saturated ultra lane. While the drain credits are
                    # saturated, `pending` and `wb_buffer` are provably
                    # empty at every event boundary (saturation is only
                    # entered with both empty, and any general-path event
                    # that refills them drains them fully in its own tick
                    # — the credit is >= _CREDIT_LOW >> one entry), so
                    # every remaining check in the slow lane below is
                    # statically false here.
                    if c:
                        offset = off_l[i]
                        size = sizes_l[i]
                        prev_line.data[offset:offset + size] = \
                            heap[p:p + size]
                        p += size
                        n_us += 1
                    else:
                        n_ul += 1
                    abuf_append(l1_ns)
                    now = now + l1_ns
                    continue
                if wb_buffer:
                    break   # live mode, undrained evict: delegate
                latency = l1_ns
                if c:
                    offset = off_l[i]
                    size = sizes_l[i]
                    prev_line.data[offset:offset + size] = heap[p:p + size]
                    p += size
                    n_stores += 1
                else:
                    n_loads += 1
                n_l1c += 1
            else:
                if wb_buffer:
                    break   # a dirty evict reached the device: delegate
                if c:
                    size = sizes_l[i]
                    store_data = heap[p:p + size]
                    p += size
                    n_stores += 1
                else:
                    n_loads += 1
                # Probe the caches before consulting the MESI mirror: the
                # fill/evict paths keep caches and directory in lockstep,
                # so a cached line implies a directory entry and loads on
                # the hit path never need the state at all. Stores read it
                # once in the shared upgrade block below — a fresh miss
                # fill has already set it to M there, making the block a
                # no-op on that path.
                index1 = (line_addr >> 6) & l1_mask
                bucket1 = l1m[index1]
                line = bucket1.get(line_addr)
                if line is not None:
                    # -- L1 hit ------------------------------------------
                    bucket1.move_to_end(line_addr)
                    n_l1c += 1
                    latency = l1_ns
                else:
                    bucket2 = l2m[(line_addr >> 6) & l2_mask]
                    line = bucket2.get(line_addr)
                    if line is not None:
                        # -- L2 hit --------------------------------------
                        n_l1m += 1
                        bucket2.move_to_end(line_addr)
                        n_l2c += 1
                        latency = l2_ns
                        # _fill_l1; a fill implies the line was absent,
                        # so the victim can never alias it, and L2
                        # inclusivity is enforced by the fill/evict paths
                        # themselves.
                        if len(bucket1) >= l1_ways:
                            bucket1.popitem(last=False)
                            n_l1e += 1
                        bucket1[line_addr] = line
                    else:
                        if states0_get(line_addr, "I") != "I":
                            raise ProtocolError(
                                "directory says core 0 holds 0x%x but L2 "
                                "lost it" % line_addr)
                        # -- miss path (single core: no owner/sharers) ---
                        bucketl = llcm[(line_addr >> 6) & llc_mask]
                        llc_line = bucketl.get(line_addr)
                        latency = llc_ns
                        if llc_line is not None:
                            bucketl.move_to_end(line_addr)
                            n_llcc += 1
                            if c:
                                bucketl.pop(line_addr)
                                n_llci += 1
                                line = CacheLine(line_addr,
                                                 bytes(llc_line.data),
                                                 llc_line.dirty)
                                latency += acquire_own_nodata(line_addr)
                                new_state = "M"
                            else:
                                line = CacheLine(line_addr,
                                                 bytes(llc_line.data))
                                new_state = "S"
                        else:
                            n_llcm += 1
                            if c:
                                data, home_ns = acquire_own_data(line_addr)
                                new_state = "M"
                            else:
                                data, home_ns = acquire_shared(line_addr)
                                new_state = "S"
                            latency += home_ns
                            n_memf += 1
                            line = CacheLine(line_addr, data)
                        # _fill_core: L2 insert (victim chain), then L1
                        if len(bucket2) >= l2_ways:
                            victim2 = bucket2.popitem(last=False)[1]
                            n_l2e += 1
                            bucket2[line_addr] = line
                            # _evict_from_l2, inlined: back-invalidate
                            # L1, drop the directory entry, spill dirty
                            # data to the LLC victim cache.
                            victim_addr = victim2.addr
                            if l1m[(victim_addr >> 6) & l1_mask] \
                                    .pop(victim_addr, None) is not None:
                                n_l1i += 1
                            ventry = dir_get(victim_addr)
                            if ventry is not None:
                                ventry.states.pop(0, None)
                                if not ventry.states:
                                    del dir_entries[victim_addr]
                            states0.pop(victim_addr, None)
                            if victim2.dirty:
                                latency += insert_llc(CacheLine(
                                    victim_addr, victim2.data, True))
                        else:
                            bucket2[line_addr] = line
                        if len(bucket1) >= l1_ways:
                            bucket1.popitem(last=False)
                            n_l1e += 1
                        bucket1[line_addr] = line
                        entry = DirectoryEntry()
                        dir_entries[line_addr] = entry
                        entry.states[0] = new_state
                        states0[line_addr] = new_state

                if c:
                    state = states0[line_addr]
                    if state == "S":
                        # _upgrade: single core, no sharers to snoop
                        if llcm[(line_addr >> 6) & llc_mask] \
                                .pop(line_addr, None) is not None:
                            n_llci += 1
                        latency += acquire_own_nodata(line_addr)
                        dir_entries[line_addr].states[0] = "M"
                        states0[line_addr] = "M"
                        n_upg += 1
                    elif state == "E":
                        dir_entries[line_addr].states[0] = "M"
                        states0[line_addr] = "M"
                    offset = off_l[i]
                    line.data[offset:offset + size] = store_data
                    line.dirty = True
                prev_addr = line_addr
                prev_line = line

            # _charge + clock.advance + background_tick, inlined. latency
            # >= l1_ns > 0, so the advance always fires the tick. While
            # saturated (credits_live False) the credit accrual runs
            # lazily from the anchors — see _CREDIT_SAT.
            abuf_append(latency)
            if credits_live:
                new_now = now + latency
                delta_s = (new_now - now) / 1e9
                undo_credit += log_bps * delta_s
                wb_credit += wb_bps * delta_s
                now = new_now
                if pending:
                    while pending and undo_credit >= ENTRY_SIZE:
                        drain_one()
                        undo_credit -= ENTRY_SIZE
                if wb_buffer:
                    wb._drain_credit = wb_credit
                    wb_drain(0.0)
                    wb_credit = wb._drain_credit
                elif (undo_credit > _CREDIT_SAT
                        and wb_credit > _CREDIT_SAT and not pending):
                    credits_live = False
                    u_anchor = now
                    w_anchor = now
            else:
                now = now + latency
                if dev_dirty:
                    # A device closure deposited into pending/wb_buffer
                    # this event; drain with lazily-accrued credit, and
                    # drop back to live accrual if either credit fell
                    # below the saturation floor.
                    dev_dirty = False
                    if pending:
                        undo_credit += log_bps * ((now - u_anchor) / 1e9)
                        u_anchor = now
                        while pending and undo_credit >= ENTRY_SIZE:
                            drain_one()
                            undo_credit -= ENTRY_SIZE
                        if undo_credit < _CREDIT_LOW:
                            wb_credit += wb_bps * ((now - w_anchor) / 1e9)
                            w_anchor = now
                            credits_live = True
                    if wb_buffer:
                        if not credits_live:
                            wb_credit += wb_bps * ((now - w_anchor) / 1e9)
                            w_anchor = now
                        wb._drain_credit = wb_credit
                        wb_drain(0.0)
                        wb_credit = wb._drain_credit
                        if not credits_live and wb_credit < _CREDIT_LOW:
                            undo_credit += log_bps * ((now - u_anchor) / 1e9)
                            u_anchor = now
                            credits_live = True
        else:
            i = n   # every remaining event consumed by the fast loop

    settle()
    return marks, mark_walls
