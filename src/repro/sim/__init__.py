"""Simulation primitives: clock, latency model, bandwidth, deterministic RNG."""

from repro.sim.bandwidth import BandwidthLimiter, BandwidthMeter
from repro.sim.clock import SimClock, StopWatch
from repro.sim.latency import (
    Bandwidth,
    CacheLatency,
    LatencyModel,
    LinkLatency,
    MediaLatency,
    SoftwareCosts,
    default_model,
)
from repro.sim.rng import DeterministicRng, UniformGenerator, ZipfianGenerator

__all__ = [
    "Bandwidth",
    "BandwidthLimiter",
    "BandwidthMeter",
    "CacheLatency",
    "DeterministicRng",
    "LatencyModel",
    "LinkLatency",
    "MediaLatency",
    "SimClock",
    "SoftwareCosts",
    "StopWatch",
    "UniformGenerator",
    "ZipfianGenerator",
    "default_model",
]
