"""Applies a :class:`FaultPlan` around an injected crash.

Composes with :class:`~repro.crashtest.CrashInjector`: the crash injector
picks *when* power fails (an exact store count); the fault injector picks
*how dirty* the failure is — tearing the PM write in flight and flipping
bits in durable metadata before recovery runs.

The bit-flip targeting is layout-aware (it reads the pool's log region
and epoch slots) because the fault model is scoped to bytes the recovery
path is responsible for: see :mod:`repro.faults.plan`.
"""

from repro.crashtest.injector import CrashInjector
from repro.errors import ConfigError
from repro.faults.device import FaultyPmDevice
from repro.pm.log import ENTRY_SIZE, UndoLogRegion
from repro.pm.pool import EPOCH_SLOT_OFFSETS, EPOCH_SLOT_SIZE
from repro.sim.rng import DeterministicRng
from repro.util.constants import CACHE_LINE_SIZE
from repro.util.stats import StatGroup


class FaultInjector:
    """Crash a machine per a fault plan, then dirty its durable bytes."""

    def __init__(self, machine, plan, rng=None):
        self.machine = machine
        self.plan = plan.validate()
        self.rng = rng or DeterministicRng(plan.seed)
        self.crash_injector = CrashInjector(machine)
        self.stats = StatGroup("fault_injector")
        if plan.torn_write and not isinstance(machine.pm, FaultyPmDevice):
            raise ConfigError(
                "torn-write faults need the machine built on a "
                "FaultyPmDevice (its write journal records the in-flight "
                "write); got %r" % type(machine.pm).__name__)

    # -- crash orchestration -------------------------------------------------

    def arm(self, stores_until_crash):
        """Crash after ``stores_until_crash`` more CPU stores."""
        self.crash_injector.arm(stores_until_crash)

    def run(self, operation):
        """Run ``operation()``; on the armed crash, apply the fault plan.

        Returns True if the crash fired (machine crashed + faults
        applied), False if the operation completed first.
        """
        crashed = self.crash_injector.run(operation)
        if crashed:
            self.apply_crash_faults()
        return crashed

    def crash(self):
        """Unconditional power failure + fault plan (no arming needed)."""
        self.machine.crash()
        self.apply_crash_faults()

    # -- fault application --------------------------------------------------

    def apply_crash_faults(self):
        """Tear the in-flight write, then flip the planned bits."""
        if self.plan.torn_write:
            self._tear_in_flight_write()
        for spec in self.plan.bitflips:
            self._apply_bitflip(spec)

    def _tear_in_flight_write(self):
        device = self.machine.pm
        last = device.last_write
        if last is None:
            self.stats.counter("tears_skipped").add(1)
            return
        _offset, _old, new = last
        keep = self.rng.randint(0, max(0, len(new) - 1))
        device.tear_last_write(keep)
        self.stats.counter("tears_applied").add(1)

    def _apply_bitflip(self, spec):
        device = self.machine.pm
        if not isinstance(device, FaultyPmDevice):
            raise ConfigError("bit-flip faults need a FaultyPmDevice")
        target = self._flip_target(spec)
        if target is None:
            self.stats.counter("flips_skipped").add(1)
            return
        offset, length = target
        device.flip_random_bits(offset, length, spec.flips, self.rng)
        self.stats.counter("flips_applied").add(spec.flips)

    def _flip_target(self, spec):
        """Pick ``(offset, length)`` device bytes for one spec, or None."""
        pool = self.machine.pool
        if spec.region == "epoch":
            slot = self.rng.choice(EPOCH_SLOT_OFFSETS)
            return slot, EPOCH_SLOT_SIZE
        # Both remaining regions key off the durable log contents.
        region = UndoLogRegion(pool.device, pool.log_base, pool.log_size)
        committed = pool.committed_epoch
        scan = region.scan_report(committed)
        if spec.region == "log":
            # Interior entries only: tail corruption is indistinguishable
            # from a torn append (see docs/faults.md) and stays out of
            # the single-fault model.
            if len(scan.entries) < 2:
                return None
            victim = self.rng.choice(scan.entries[:-1])
            return pool.log_base + victim.offset, ENTRY_SIZE
        if spec.region == "logged_data":
            live = [e for e in scan.entries if e.epoch > committed]
            if not live:
                return None
            victim = self.rng.choice(live)
            return victim.addr, CACHE_LINE_SIZE
        raise ConfigError("unknown bit-flip region %r" % (spec.region,))
