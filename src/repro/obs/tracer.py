"""The structured event tracer.

Events are plain tuples, ``(ph, category, name, ts_ns, dur_ns, args)``:

* ``ph`` — the phase, :data:`EVENT_SPAN` (``"X"``, a completed operation
  covering ``[ts_ns, ts_ns + dur_ns)`` of simulated time) or
  :data:`EVENT_INSTANT` (``"i"``, a point event; ``dur_ns`` is 0). The
  letters deliberately match Chrome ``trace_event`` phases so the export
  is a rename, not a transformation.
* ``category`` — one of :data:`CATEGORIES`; what the event *is about*
  (undo-log append, snoop, epoch commit, ...), the axis ``summarize``
  groups by.
* ``ts_ns`` — **simulated** nanoseconds from the attached machine's
  :class:`~repro.sim.clock.SimClock`. Never wall-clock: traces replay
  bit-for-bit from a seed like everything else in this repository.
* ``args`` — a small dict of event detail (line address, epoch number,
  message type) or None.

Storage is a fixed-capacity :class:`RingBuffer`: tracing a long run
keeps the newest events and counts what it dropped, so an attached
tracer can never grow without bound. 64 Ki events cover a perfbench
microworkload with room to spare.

Cost discipline: every instrumentation site guards with a single
``tracer is not None`` attribute check (nothing else — no flag reads,
no method calls) so an untraced run pays one pointer test per hook.
When a tracer *is* attached but :attr:`ObsTracer.enabled` is False, the
hook methods return after one attribute check of their own; the
``python -m repro.obs overhead`` harness measures both regimes.
"""

from repro.errors import ConfigError
from repro.sanitizer.base import Tracer

#: Chrome-compatible phase letters.
EVENT_SPAN = "X"
EVENT_INSTANT = "i"

#: The event taxonomy (docs/observability.md documents each source).
CATEGORIES = (
    "load",           # cache miss servicing for a read
    "store",          # CPU stores + cache miss servicing for a write
    "undo-append",    # undo/WAL record creation
    "drain",          # undo records reaching the durable log region
    "snoop",          # device-to-host SnpData/SnpInv handling
    "writeback",      # bytes reaching the PM medium, CLWB/SFENCE costs
    "epoch-commit",   # persist() spans, epoch record slot writes, tx commits
    "recovery",       # crash, restart, rollback
    "link",           # CXL/Enzian message hops
    "tx",             # software transaction begin/end
)

DEFAULT_CAPACITY = 64 * 1024


class RingBuffer:
    """Fixed-capacity event store that overwrites its oldest entries."""

    __slots__ = ("capacity", "_slots", "_total")

    def __init__(self, capacity=DEFAULT_CAPACITY):
        if capacity < 1:
            raise ConfigError("ring buffer capacity must be >= 1")
        self.capacity = capacity
        self._slots = [None] * capacity
        self._total = 0

    def append(self, event):
        """Store one event, evicting the oldest once full."""
        self._slots[self._total % self.capacity] = event
        self._total += 1

    def __len__(self):
        return min(self._total, self.capacity)

    @property
    def total(self):
        """Events ever appended (retained + dropped)."""
        return self._total

    @property
    def dropped(self):
        """Events overwritten because the buffer wrapped."""
        return max(0, self._total - self.capacity)

    def events(self):
        """Retained events, oldest first."""
        total = self._total
        capacity = self.capacity
        if total <= capacity:
            return self._slots[:total]
        cut = total % capacity
        return self._slots[cut:] + self._slots[:cut]

    def clear(self):
        """Forget everything (capacity is kept)."""
        self._slots = [None] * self.capacity
        self._total = 0


class ObsTracer(Tracer):
    """Ring-buffered structured tracer over the instrumentation hooks.

    Attach with :meth:`attach` (machines, backends, and ``PaxPool`` all
    work); the tracer adopts the target's simulated clock for
    timestamps. One tracer can be re-attached across restarts and even
    across machines (the crash fuzzer reuses one for a whole sweep) —
    events simply keep accumulating in the ring.
    """

    def __init__(self, clock=None, capacity=DEFAULT_CAPACITY):
        self.ring = RingBuffer(capacity)
        self.enabled = True
        self._clock = clock
        # Bound method: the hooks below append via one attribute load.
        self._append = self.ring.append

    # -- wiring ------------------------------------------------------------

    def attach(self, target):
        """Wire this tracer into ``target``; returns self.

        ``target`` may be a machine (has ``attach_tracer`` and
        ``clock``), a backend (has ``machine``), or a ``PaxPool``. The
        richest attach hook the target offers is used, so backend-side
        components (FlushModel, Wal) are wired too where they exist.
        """
        machine = target
        for hop in ("pool", "machine"):
            inner = getattr(machine, hop, None)
            if inner is not None and hasattr(inner, "attach_tracer"):
                machine = inner
        self._clock = machine.clock
        attach = getattr(target, "attach_tracer", None)
        if attach is not None:
            attach(self)
        else:
            machine.attach_tracer(self)
        return self

    def _now(self):
        clock = self._clock
        return clock.now_ns if clock is not None else 0

    # -- recording ---------------------------------------------------------

    def instant(self, category, name, args=None):
        """Record a point event stamped with the current simulated time."""
        if self.enabled:
            self._append((EVENT_INSTANT, category, name, self._now(), 0,
                          args))

    def on_span(self, category, name, start_ns, dur_ns, args=None):
        """Record a completed span; ``start_ns`` None means "stamp now"."""
        if self.enabled:
            if start_ns is None:
                start_ns = self._now()
            self._append((EVENT_SPAN, category, name, start_ns, dur_ns,
                          args))

    def events(self):
        """Retained events, oldest first."""
        return self.ring.events()

    def counts_by_category(self):
        """``{category: event count}`` over the retained events."""
        counts = {}
        for event in self.ring.events():
            category = event[1]
            counts[category] = counts.get(category, 0) + 1
        return counts

    # -- Tracer protocol hooks -> instant events ---------------------------
    # Each is one enabled-check plus one tuple append; sim state is only
    # ever read, never touched, so traced and untraced runs stay
    # byte-identical (tests/test_obs_golden.py).

    def on_store(self, phys_line):
        if self.enabled:
            self._append((EVENT_INSTANT, "store", "store", self._now(), 0,
                          {"line": phys_line}))

    def on_pm_write(self, offset, length):
        if self.enabled:
            self._append((EVENT_INSTANT, "writeback", "pm-write",
                          self._now(), 0,
                          {"offset": offset, "bytes": length}))

    def on_log_record(self, pool_addr, seq, epoch):
        if self.enabled:
            self._append((EVENT_INSTANT, "undo-append", "undo-record",
                          self._now(), 0,
                          {"addr": pool_addr, "seq": seq, "epoch": epoch}))

    def on_log_durable(self, seq):
        if self.enabled:
            self._append((EVENT_INSTANT, "drain", "undo-durable",
                          self._now(), 0, {"seq": seq}))

    def on_epoch_commit(self, epoch):
        if self.enabled:
            self._append((EVENT_INSTANT, "epoch-commit", "epoch-advance",
                          self._now(), 0, {"epoch": epoch}))

    def on_snoop(self, kind, phys_line, dirty):
        if self.enabled:
            self._append((EVENT_INSTANT, "snoop", "snoop-" + kind,
                          self._now(), 0,
                          {"line": phys_line, "dirty": dirty}))

    def on_clwb(self, addr, num_lines):
        if self.enabled:
            self._append((EVENT_INSTANT, "writeback", "clwb", self._now(),
                          0, {"addr": addr, "lines": num_lines}))

    def on_fence(self):
        if self.enabled:
            self._append((EVENT_INSTANT, "writeback", "sfence", self._now(),
                          0, None))

    def on_wal_append(self, tx_id, addr):
        if self.enabled:
            self._append((EVENT_INSTANT, "undo-append", "wal-append",
                          self._now(), 0, {"tx": tx_id, "addr": addr}))

    def on_wal_reset(self):
        if self.enabled:
            self._append((EVENT_INSTANT, "undo-append", "wal-reset",
                          self._now(), 0, None))

    def on_tx_begin(self, tx_id=None):
        if self.enabled:
            self._append((EVENT_INSTANT, "tx", "tx-begin", self._now(), 0,
                          {"tx": tx_id} if tx_id is not None else None))

    def on_tx_end(self):
        if self.enabled:
            self._append((EVENT_INSTANT, "tx", "tx-end", self._now(), 0,
                          None))

    def on_tx_commit(self, tx_id):
        if self.enabled:
            self._append((EVENT_INSTANT, "epoch-commit", "tx-commit",
                          self._now(), 0, {"tx": tx_id}))

    def on_machine_crash(self):
        if self.enabled:
            self._append((EVENT_INSTANT, "recovery", "crash", self._now(),
                          0, None))

    def on_machine_restart(self):
        if self.enabled:
            self._append((EVENT_INSTANT, "recovery", "restart", self._now(),
                          0, None))

    def __repr__(self):
        return "ObsTracer(%d events, %d dropped)" % (len(self.ring),
                                                     self.ring.dropped)


class TeeTracer(Tracer):
    """Fan one instrumentation stream out to several tracers.

    Lets a sanitizer and an :class:`ObsTracer` share a machine's single
    tracer slot (the fuzzer's ``--sanitize --trace`` combination).
    Every protocol hook — including the span/snoop hooks — forwards to
    each child in order.
    """

    def __init__(self, children):
        self.children = list(children)

    def _fan(self, method_name, *args, **kwargs):
        for child in self.children:
            getattr(child, method_name)(*args, **kwargs)

    def on_span(self, category, name, start_ns, dur_ns, args=None):
        self._fan("on_span", category, name, start_ns, dur_ns, args)

    def on_snoop(self, kind, phys_line, dirty):
        self._fan("on_snoop", kind, phys_line, dirty)

    def on_store(self, phys_line):
        self._fan("on_store", phys_line)

    def on_pm_write(self, offset, length):
        self._fan("on_pm_write", offset, length)

    def on_log_record(self, pool_addr, seq, epoch):
        self._fan("on_log_record", pool_addr, seq, epoch)

    def on_log_durable(self, seq):
        self._fan("on_log_durable", seq)

    def on_epoch_commit(self, epoch):
        self._fan("on_epoch_commit", epoch)

    def on_clwb(self, addr, num_lines):
        self._fan("on_clwb", addr, num_lines)

    def on_fence(self):
        self._fan("on_fence")

    def on_wal_append(self, tx_id, addr):
        self._fan("on_wal_append", tx_id, addr)

    def on_wal_reset(self):
        self._fan("on_wal_reset")

    def on_tx_begin(self, tx_id=None):
        self._fan("on_tx_begin", tx_id=tx_id)

    def on_tx_end(self):
        self._fan("on_tx_end")

    def on_tx_commit(self, tx_id):
        self._fan("on_tx_commit", tx_id)

    def on_backend_attach(self, backend, layout):
        self._fan("on_backend_attach", backend, layout)

    def on_machine_crash(self):
        self._fan("on_machine_crash")

    def on_machine_restart(self):
        self._fan("on_machine_restart")
