"""The autopass backend: staticcheck-generated gate placement driving
the same WAL machinery as the hand-written pmdk backend."""

import pytest

from repro.baselines import AutopassBackend, make_backend
from repro.errors import LogError
from repro.sanitizer import WalSanitizer
from tests.conftest import small_cache_kwargs


def build(capacity=64, **extra):
    kwargs = dict(heap_size=4 * 1024 * 1024, capacity=capacity)
    kwargs.update(small_cache_kwargs())
    kwargs.update(extra)
    return make_backend("autopass", **kwargs)


def test_registry_and_flags():
    backend = build()
    assert isinstance(backend, AutopassBackend)
    assert backend.name == "autopass"
    assert backend.crash_consistent


def test_basic_ops_and_grow():
    backend = build(capacity=4)
    for key in range(64):   # far past capacity: several grows
        backend.put(key, key * 3)
    assert len(backend) == 64
    assert backend.get(17) == 51
    assert backend.remove(17)
    assert backend.get(17) is None
    assert not backend.remove(17)
    expected = {key: key * 3 for key in range(64) if key != 17}
    assert backend.to_dict() == expected
    assert dict(backend.items()) == expected


def test_gate_count_tracks_committed_transactions():
    backend = build()
    before = backend.gate_count
    backend.put(1, 10)
    mid = backend.gate_count
    assert mid > before
    backend.get(1)          # loads commit nothing
    assert backend.gate_count == mid
    backend.remove(1)
    assert backend.gate_count > mid


def test_transaction_nesting_commits_once_at_outermost_end():
    backend = build()
    tx = backend._tx
    before = tx.gate_commits
    with tx.transaction():
        assert tx.in_tx
        with tx.transaction():      # nested region: no commit yet
            backend.put(3, 30)
        assert tx.gate_commits == before
        assert tx.in_tx
    assert tx.gate_commits == before + 1
    assert not tx.in_tx
    assert backend.get(3) == 30


def test_end_without_begin_raises():
    backend = build()
    with pytest.raises(LogError):
        backend._tx.end()


def test_walsan_clean_under_mixed_workload():
    backend = build(capacity=4)
    san = WalSanitizer()
    san.attach(backend)
    for key in range(40):
        backend.put(key, key)
    for key in range(0, 40, 3):
        backend.remove(key)
    backend.crash()
    backend.restart()
    assert san.ok, san.findings


def test_crash_recover_with_open_gate():
    # A crash strands an open gate; restart must roll the partial tx
    # back and reset the accessor so new gated ops work.
    backend = build()
    for key in range(8):
        backend.put(key, key)
    base = backend.to_dict()
    tx = backend._tx
    tx.begin()
    tx.write(64, b"\x42" * 64)      # uncommitted arena store
    backend.crash()
    undone = backend.restart()
    assert undone >= 1
    assert not tx.in_tx
    assert backend.to_dict() == base
    backend.put(99, 990)            # gates still work post-recovery
    assert backend.get(99) == 990


def test_sim_ns_parity_with_pmdk():
    # Identical no-grow workload: auto-placed gates commit the same
    # lines in the same batches as hand-written pmdk gates, so the two
    # backends consume *exactly* the same simulated time in steady
    # state. (Pool *creation* is excluded: there autopass wraps each
    # allocator store in a depth-0 mini-tx while pmdk covers creation
    # with one hand-written transaction, so the one-off setup cost
    # differs even though every put/remove afterwards matches.)
    def drive(name):
        kwargs = dict(heap_size=4 * 1024 * 1024, capacity=256)
        kwargs.update(small_cache_kwargs())
        backend = make_backend(name, **kwargs)
        start = backend.now_ns
        for i in range(120):
            backend.put(i % 50, i)
        for i in range(0, 50, 4):
            backend.remove(i)
        return backend.now_ns - start

    # approx only absorbs float dust: the two clocks accumulate the
    # same increments on different bases, so the deltas agree to ~1e-9
    # relative but not bit-for-bit.
    assert drive("autopass") == pytest.approx(drive("pmdk"), abs=1e-3)
