"""Property-based crash testing: the heart of the correctness argument.

Hypothesis chooses a workload and a crash point (in stores); after the
injected crash and recovery, PAX must expose exactly the last persisted
snapshot — never a torn state, never lost persisted data — at *every*
possible cut point, including mid-put, mid-resize, and mid-persist
preparation.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crashtest import (
    CrashInjector,
    SnapshotTracker,
    count_stores,
    verify_map_integrity,
)
from repro.structures import HashMap
from tests.conftest import make_pax_pool

SETTINGS = settings(max_examples=20, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow,
                                           HealthCheck.data_too_large])


def run_ops(pool, table, tracker, ops):
    for kind, key, value in ops:
        if kind == "put":
            table.put(key, value)
            tracker.put(key, value)
        elif kind == "remove":
            table.remove(key)
            tracker.remove(key)
        else:
            pool.persist()
            tracker.persist()


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 30), st.integers(0, 1000)),
        st.tuples(st.just("remove"), st.integers(0, 30), st.just(0)),
        st.tuples(st.just("persist"), st.just(0), st.just(0)),
    ),
    min_size=1, max_size=40)


class TestPaxSnapshotProperty:
    @SETTINGS
    @given(ops=ops_strategy, crash_fraction=st.floats(0.0, 1.0))
    def test_recovery_always_yields_last_snapshot(self, ops, crash_fraction):
        pool = make_pax_pool()
        table = pool.persistent(HashMap, capacity=16)
        tracker = SnapshotTracker()
        # Count the stores the whole workload issues, then replay on a
        # fresh pool with a crash injected part-way.
        probe_pool = make_pax_pool()
        probe_table = probe_pool.persistent(HashMap, capacity=16)
        probe_tracker = SnapshotTracker()
        total_stores = count_stores(
            probe_pool.machine,
            lambda: run_ops(probe_pool, probe_table, probe_tracker, ops))
        cut = int(total_stores * crash_fraction)
        injector = CrashInjector(pool.machine)
        injector.arm(cut)
        crashed = injector.run(lambda: run_ops(pool, table, tracker, ops))
        if not crashed:
            pool.crash()
        pool.restart()
        recovered = pool.reattach_root(HashMap)
        pairs = verify_map_integrity(recovered)
        # The tracker's last *persisted* snapshot is a prefix property: the
        # crash may have cut after N persists; whatever the count, the
        # recovered state must equal one of the persisted snapshots, and
        # specifically the latest one whose persist() completed.
        assert pairs in tracker.history, (
            "recovered state matches no persisted snapshot")

    @SETTINGS
    @given(crash_point=st.integers(0, 400))
    def test_crash_during_resize(self, crash_point):
        # A resize rewrites every bucket: the classic torn-operation case.
        pool = make_pax_pool()
        table = pool.persistent(HashMap, capacity=4)
        for key in range(8):
            table.put(key, key)
        pool.persist()
        snapshot = dict(table.to_dict())
        injector = CrashInjector(pool.machine)
        injector.arm(crash_point)

        def trigger_resize():
            table.put(8, 8)       # count 9 > 4*2: grows to 8 buckets

        crashed = injector.run(trigger_resize)
        if crashed:
            pool.restart()
            recovered = pool.reattach_root(HashMap)
            assert verify_map_integrity(recovered) == snapshot
        else:
            assert table.get(8) == 8

    @SETTINGS
    @given(n_persisted=st.integers(0, 15), n_lost=st.integers(0, 15))
    def test_exact_boundary(self, n_persisted, n_lost):
        pool = make_pax_pool()
        table = pool.persistent(HashMap, capacity=16)
        for key in range(n_persisted):
            table.put(key, key)
        pool.persist()
        for key in range(100, 100 + n_lost):
            table.put(key, key)
        pool.crash()
        pool.restart()
        recovered = pool.reattach_root(HashMap)
        assert recovered.to_dict() == {key: key for key in range(n_persisted)}


class TestBTreeCrashProperty:
    @SETTINGS
    @given(keys=st.lists(st.integers(0, 200), min_size=1, max_size=40,
                         unique=True),
           crash_fraction=st.floats(0.0, 1.0))
    def test_btree_splits_never_tear(self, keys, crash_fraction):
        # B-tree node splits rewrite three nodes; any cut must recover to
        # the persisted tree exactly, order intact.
        from repro.structures import BTree
        pool = make_pax_pool()
        tree = pool.persistent(BTree)
        committed = keys[: len(keys) // 2]
        for key in committed:
            tree.put(key, key)
        pool.persist()
        lost = keys[len(keys) // 2:]
        probe = count_stores(pool.machine,
                             lambda: [tree.put(k, k) for k in lost]) \
            if lost else 0
        # The probe applied the puts; re-persist and cut a fresh batch.
        pool.persist()
        snapshot = dict(tree.to_dict())
        injector = CrashInjector(pool.machine)
        injector.arm(int(probe * crash_fraction))
        crashed = injector.run(
            lambda: [tree.put(k + 1000, k) for k in lost])
        if not crashed:
            pool.crash()
        pool.restart()
        recovered = pool.reattach_root(BTree)
        recovered.check_order()
        assert recovered.to_dict() == snapshot


class TestCrashDuringBackgroundActivity:
    @SETTINGS
    @given(advance_ns=st.integers(0, 10_000_000))
    def test_background_drain_never_breaks_rollback(self, advance_ns):
        # Let the device drain arbitrarily much log/write-back work before
        # the crash: the PM may contain any mix of old and new lines, and
        # rollback must still restore the snapshot exactly.
        pool = make_pax_pool()
        table = pool.persistent(HashMap, capacity=16)
        for key in range(10):
            table.put(key, key)
        pool.persist()
        snapshot = dict(table.to_dict())
        for key in range(10):
            table.put(key, key + 100)
        pool.machine.clock.advance(advance_ns)    # background progress
        pool.crash()
        pool.restart()
        recovered = pool.reattach_root(HashMap)
        assert recovered.to_dict() == snapshot
