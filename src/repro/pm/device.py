"""The persistent memory device model.

Models an Optane-DC-style DIMM behind ADR: once a write *arrives at the
device* it is inside the asynchronous-DRAM-refresh power-fail domain and
therefore durable (paper §1). The volatile part of the system is the CPU
cache hierarchy and the PAX device's buffers, both modelled elsewhere;
consequently :meth:`on_crash` here preserves contents.

The device can be backed by a real file so pools survive the hosting
Python process. Writes are buffered in memory and flushed to the file by
:meth:`sync`; this is an artifact of simulation (the byte array *is* the
durable medium for crash-injection purposes) and is documented in
DESIGN.md.
"""

import collections
import os

from repro.mem.physical import MemoryDevice
from repro.util.bitops import lines_covering
from repro.util.constants import CACHE_LINE_SIZE
from repro.util.fastpath import fast_path_enabled

#: Offset-within-line mask for the arithmetic line walk in :meth:`write`.
_LINE_MASK = CACHE_LINE_SIZE - 1


class PmDevice(MemoryDevice):
    """Byte-addressable persistent memory with line-granularity accounting."""

    KIND = "pm"

    def __init__(self, name, size, backing_path=None):
        super().__init__(name, size)
        self.backing_path = backing_path
        #: Per-line write counts (endurance/wear accounting). PM media
        #: wears out per write; schemes that concentrate writes (WAL
        #: regions) create hotspots this tally makes measurable. A
        #: ``collections.Counter`` so the write path is a bare
        #: ``wear[line] += 1`` with no per-write ``dict.get`` dance; it
        #: still reads like a plain mapping everywhere else.
        self.line_wear = collections.Counter()
        #: Optional tracer told about every media write (PaxSan's
        #: write-back gate check lives behind this hook).
        self.tracer = None
        self._c_lines_written = self.stats.counter("lines_written")
        self._fast = fast_path_enabled()
        if backing_path is not None and os.path.exists(backing_path):
            self._load()

    def write(self, offset, data):
        data = bytes(data)
        if self.tracer is not None:
            self.tracer.on_pm_write(offset, len(data))
        # Account media write amplification in cache-line units: the DIMM
        # internally writes whole lines (Optane actually uses 256 B blocks;
        # we use the coherence granularity, which is what the paper's
        # write-amplification argument is phrased in).
        size = len(data)
        if size:
            if self._fast:
                # Arithmetic line walk: same lines as lines_covering()
                # without building a generator plus list per write.
                first = offset & ~_LINE_MASK
                last = (offset + size - 1) & ~_LINE_MASK
                wear = self.line_wear
                if first == last:
                    self._c_lines_written.add(1)
                    wear[first] += 1
                else:
                    self._c_lines_written.add(
                        ((last - first) // CACHE_LINE_SIZE) + 1)
                    for line in range(first, last + 1, CACHE_LINE_SIZE):
                        wear[line] += 1
            else:
                touched = lines_covering(offset, size)
                self._c_lines_written.add(len(touched))
                for line in touched:
                    self.line_wear[line] += 1
        super().write(offset, data)

    # -- endurance accounting ------------------------------------------------

    def max_line_wear(self):
        """Highest write count on any single line (the wear hotspot)."""
        return max(self.line_wear.values()) if self.line_wear else 0

    def region_writes(self, base, size):
        """Total line writes that landed inside ``[base, base+size)``."""
        return sum(count for line, count in self.line_wear.items()
                   if base <= line < base + size)

    def wear_profile(self):
        """``(lines_touched, total_writes, max_writes)`` summary."""
        if not self.line_wear:
            return (0, 0, 0)
        counts = self.line_wear.values()
        return (len(self.line_wear), sum(counts), max(counts))

    def on_crash(self):
        """ADR: device contents survive power loss untouched."""
        self.stats.counter("crash_survived").add(1)

    # -- file backing ------------------------------------------------------

    def _load(self):
        with open(self.backing_path, "rb") as handle:
            blob = handle.read()
        if len(blob) > self.size:
            blob = blob[: self.size]
        self._data[: len(blob)] = blob

    def sync(self):
        """Flush device contents to the backing file (no-op if unbacked)."""
        if self.backing_path is None:
            return
        tmp_path = self.backing_path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(bytes(self._data))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.backing_path)

    @property
    def media_write_bytes(self):
        """Bytes written at line granularity (for write-amp reporting)."""
        return self.stats.get("lines_written") * CACHE_LINE_SIZE
