"""CLI for the experiment-matrix harness: ``python -m repro.sweep``.

Examples::

    python -m repro.sweep specs/full-grid.toml
    python -m repro.sweep specs/smoke-grid.toml --out smoke.json \\
        --markdown smoke.md
    python -m repro.sweep specs/full-grid.toml --compare SWEEP_BASE.json

Exit codes: 0 every cell replayed and every spot check passed (and the
optional ``--compare`` found no drift); 1 a fingerprint spot check or
baseline comparison failed; 2 the spec was rejected.
"""

import argparse
import json
import sys

from repro.errors import ConfigError, ReproError
from repro.sweep import SCHEMA, load_spec, run_sweep
from repro.sweep.report import (compare_sweeps, load_report, to_markdown,
                                write_report)


def build_parser():
    """The sweep CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Run a declarative experiment grid (record once, "
                    "replay many, fingerprint-verify) from a spec file.")
    parser.add_argument("spec", help="sweep spec path (.toml or .json)")
    parser.add_argument("--out", default="SWEEP.json",
                        help="report path (default %(default)s)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also render the report as markdown tables")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="grade this sweep against a baseline sweep "
                             "report; exit 1 on sim_ns drift")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    return parser


def main(argv=None):
    """Run one sweep; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        spec = load_spec(args.spec)
    except ConfigError as exc:
        print("sweep: bad spec: %s" % exc, file=sys.stderr)
        return 2

    def progress(cell):
        verified = {None: " ", True: "+", False: "!"}[cell["verified"]]
        print("%s %-11s %-9s %-32s %10d sim-ns  [%s]"
              % (verified, cell["workload"], cell["backend"],
                 cell["variant"], cell["sim_ns_timed"], cell["engine"]))

    try:
        report = run_sweep(spec, progress=None if args.quiet else progress)
    except ReproError as exc:
        print("sweep: %s" % exc, file=sys.stderr)
        return 2
    write_report(report, args.out)
    print("wrote %s (%d cells, schema %s)"
          % (args.out, len(report["cells"]), SCHEMA))
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(to_markdown(report))
        print("wrote %s" % args.markdown)

    verification = report["verification"]
    print("verification: %d checked, %d passed, %d failed"
          % (verification["checked"], verification["passed"],
             verification["failed"]))
    status = 0
    if verification["failed"]:
        for failure in verification["failures"]:
            print("FINGERPRINT MISMATCH: %s/%s %s (%d key(s))"
                  % (failure["workload"], failure["backend"],
                     failure["variant"], failure["mismatch_count"]),
                  file=sys.stderr)
        status = 1

    if args.compare:
        try:
            baseline = load_report(args.compare)
        except (ConfigError, OSError, ValueError) as exc:
            print("sweep: bad baseline: %s" % exc, file=sys.stderr)
            return 2
        grade = compare_sweeps(report, baseline)
        compare_out = args.out
        if compare_out.endswith(".json"):
            compare_out = compare_out[:-len(".json")]
        compare_out += ".compare.json"
        with open(compare_out, "w") as handle:
            json.dump(grade, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % compare_out)
        if grade["problems"]:
            for problem in grade["problems"]:
                print("DRIFT: %s" % problem, file=sys.stderr)
            status = 1
        else:
            print("no drift vs %s" % args.compare)
    return status


if __name__ == "__main__":
    sys.exit(main())
