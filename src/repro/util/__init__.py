"""Shared low-level utilities: constants, bit math, checksums, statistics."""

from repro.util.bitops import (
    align_down,
    align_up,
    is_aligned,
    line_base,
    line_offset,
    lines_covering,
    page_base,
    page_offset,
    pages_covering,
    split_lines,
    split_pages,
)
from repro.util.checksum import crc32c, verify
from repro.util.constants import (
    CACHE_LINE_SIZE,
    LINES_PER_PAGE,
    MAX_PHYS_ADDR,
    NULL_ADDR,
    PAGE_SIZE,
    WORD_SIZE,
    WORDS_PER_LINE,
    is_power_of_two,
)
from repro.util.stats import Counter, Histogram, StatGroup, ratio

__all__ = [
    "CACHE_LINE_SIZE",
    "LINES_PER_PAGE",
    "MAX_PHYS_ADDR",
    "NULL_ADDR",
    "PAGE_SIZE",
    "WORD_SIZE",
    "WORDS_PER_LINE",
    "Counter",
    "Histogram",
    "StatGroup",
    "align_down",
    "align_up",
    "crc32c",
    "is_aligned",
    "is_power_of_two",
    "line_base",
    "line_offset",
    "lines_covering",
    "page_base",
    "page_offset",
    "pages_covering",
    "ratio",
    "split_lines",
    "split_pages",
    "verify",
]
