"""Tracer protocol and shared sanitizer machinery.

Instrumented components (the cache hierarchy, the PM device, the undo
logger, the pool's epoch cell, the flush model, the WAL) each carry a
``tracer`` attribute, ``None`` by default; when set, they emit the events
below at the exact points the persist-order argument cares about. A
:class:`Tracer` ignores everything — sanitizers subclass it and override
only the events their rules need, so one tracer can attach to any subset
of components without caring which events actually fire.
"""

from repro.errors import SanitizerError

#: A store reached PM with no undo/WAL record covering the line.
RULE_MISSING_UNDO = "san-missing-undo"
#: A line was written to PM before its undo record became durable.
RULE_UNDO_GATE = "san-undo-gate"
#: An epoch/tx committed while lines it modified were still volatile.
RULE_PREMATURE_COMMIT = "san-premature-commit"
#: A commit was published while flushes/NT stores were still unfenced.
RULE_FENCE_INVERSION = "san-fence-inversion"

#: Every rule id a sanitizer can report.
ALL_RULES = (RULE_MISSING_UNDO, RULE_UNDO_GATE, RULE_PREMATURE_COMMIT,
             RULE_FENCE_INVERSION)


class Tracer:
    """Base tracer: receives every instrumentation event, ignores all.

    Event sources, by component:

    * :class:`~repro.cache.hierarchy.CacheHierarchy` — :meth:`on_store`
    * :class:`~repro.pm.device.PmDevice` — :meth:`on_pm_write`
    * :class:`~repro.core.undo.UndoLogger` — :meth:`on_log_record`,
      :meth:`on_log_durable`
    * :class:`~repro.pm.pool.Pool` — :meth:`on_epoch_commit`
    * :class:`~repro.pm.flush.FlushModel` — :meth:`on_clwb`,
      :meth:`on_fence`
    * :class:`~repro.baselines.wal.Wal` — :meth:`on_wal_append`,
      :meth:`on_wal_reset`
    * :class:`~repro.baselines.wal.DurableCells` — :meth:`on_tx_commit`
    * the tx accessors — :meth:`on_tx_begin`, :meth:`on_tx_end`
    * the machines — :meth:`on_machine_crash`, :meth:`on_machine_restart`
    * timed operations (miss handling, link hops, persist, recovery) —
      :meth:`on_span`; the hierarchy's snoop ports — :meth:`on_snoop`

    The span/snoop hooks exist for ``repro.obs`` structured tracing;
    sanitizers ignore them, and like every hook they must only *read*
    simulation state — a tracer that perturbs ``sim_ns`` or a stat
    counter breaks the traced-equals-untraced guarantee.
    """

    def on_store(self, phys_line):
        """A CPU store touched cache line ``phys_line`` (physical addr)."""

    def on_pm_write(self, offset, length):
        """``length`` bytes landed on the PM medium at device ``offset``."""

    def on_log_record(self, pool_addr, seq, epoch):
        """Undo record ``seq`` (epoch ``epoch``) now covers ``pool_addr``."""

    def on_log_durable(self, seq):
        """Undo record ``seq`` reached the durable PM log region."""

    def on_epoch_commit(self, epoch):
        """The pool's epoch record is being advanced to ``epoch``."""

    def on_clwb(self, addr, num_lines):
        """``num_lines`` cache-line write-backs were issued at ``addr``."""

    def on_fence(self):
        """An SFENCE ordered (drained) every prior flush/NT store."""

    def on_wal_append(self, tx_id, addr):
        """A WAL entry for line ``addr`` was durably appended for ``tx_id``."""

    def on_wal_reset(self):
        """The WAL was rewound (post-commit reuse)."""

    def on_tx_begin(self, tx_id=None):
        """A software transaction opened (``tx_id`` may be None)."""

    def on_tx_end(self):
        """The open software transaction closed."""

    def on_tx_commit(self, tx_id):
        """The commit cell was atomically published as ``tx_id``."""

    def on_backend_attach(self, backend, layout):
        """A WAL backend adopted this tracer; ``layout`` is its WalLayout."""

    def on_machine_crash(self):
        """The machine simulated power loss (recovery writes follow)."""

    def on_machine_restart(self):
        """The machine rebooted and recovery finished; state is clean."""

    def on_span(self, category, name, start_ns, dur_ns, args=None):
        """A timed operation covered ``[start_ns, start_ns + dur_ns)``.

        ``category`` is one of ``repro.obs.CATEGORIES``; ``start_ns`` of
        None means "stamp with the current simulated time".
        """

    def on_snoop(self, kind, phys_line, dirty):
        """The device snooped ``phys_line``; ``kind`` is shared|invalidate.

        ``dirty`` is True when the snoop found (and for invalidations,
        extracted) modified data in the hierarchy.
        """


class SanitizerBase(Tracer):
    """Violation reporting shared by both sanitizer flavours.

    In the default *raise* mode a violation raises the
    :class:`~repro.errors.SanitizerError` at the offending simulation
    step, so the traceback points into the code that broke the order. In
    *collect* mode (``raise_on_violation=False``) violations accumulate
    in :attr:`findings` and the run continues.
    """

    def __init__(self, raise_on_violation=True):
        self.raise_on_violation = raise_on_violation
        #: Every :class:`~repro.errors.SanitizerError` reported so far.
        self.findings = []
        self._suspended = False

    @property
    def checking(self):
        """False between crash and restart, when recovery rewrites PM."""
        return not self._suspended

    @property
    def ok(self):
        """True while no violation has been reported."""
        return not self.findings

    def _report(self, rule, message, addr=None, epoch=None):
        error = SanitizerError(rule, message, addr=addr, epoch=epoch)
        self.findings.append(error)
        if self.raise_on_violation:
            raise error
        return error

    def on_machine_crash(self):
        """Suspend checking: recovery legitimately rewrites PM data."""
        self._suspended = True

    def on_machine_restart(self):
        """Resume checking over the machine's recovered, clean state."""
        self._suspended = False
