"""Declarative C-style struct layouts over a :class:`MemoryAccessor`.

Persistent structures are laid out like C structs in the pool: fixed field
offsets, u64 words, explicit sizes. :class:`StructLayout` computes offsets
from an ordered field list and :class:`StructView` gives attribute-style
access to one instance at a given address. This keeps the data-structure
code readable while every field access remains an observable load/store.

>>> layout = StructLayout("entry", [("key", "u64"), ("value", "u64"),
...                                 ("next", "u64")])
>>> layout.size
24
>>> layout.offset("next")
16
"""

from repro.errors import ConfigError
from repro.util.bitops import align_up

_FIELD_SIZES = {"u8": 1, "u16": 2, "u32": 4, "u64": 8}
_FIELD_ALIGNS = dict(_FIELD_SIZES)


class Field:
    """One field in a :class:`StructLayout`."""

    __slots__ = ("name", "kind", "offset", "size", "count")

    def __init__(self, name, kind, offset, size, count):
        self.name = name
        self.kind = kind
        self.offset = offset
        self.size = size
        self.count = count

    def __repr__(self):
        return "Field(%s: %s @%d)" % (self.name, self.kind, self.offset)


class StructLayout:
    """Computes natural-alignment offsets for an ordered list of fields.

    Fields are ``(name, kind)`` pairs where kind is ``u8``/``u16``/``u32``/
    ``u64``, ``bytes:N`` for a fixed byte array, or ``u64:N`` for an array
    of N words. The total size is rounded up to 8 bytes so consecutive
    structs stay word-aligned.
    """

    def __init__(self, name, fields):
        self.name = name
        self.fields = {}
        offset = 0
        for field_name, kind in fields:
            if field_name in self.fields:
                raise ConfigError("duplicate field %s in %s" % (field_name, name))
            base_kind, _, count_str = kind.partition(":")
            count = int(count_str) if count_str else 1
            if count <= 0:
                raise ConfigError("field %s has non-positive count" % field_name)
            if base_kind == "bytes":
                size = count
                alignment = 1
                count = 1
            elif base_kind in _FIELD_SIZES:
                size = _FIELD_SIZES[base_kind] * count
                alignment = _FIELD_ALIGNS[base_kind]
            else:
                raise ConfigError("unknown field kind %r" % (kind,))
            offset = align_up(offset, alignment)
            self.fields[field_name] = Field(field_name, base_kind, offset,
                                            size, count)
            offset += size
        self.size = align_up(offset, 8) if offset else 8

    def offset(self, field_name):
        """Byte offset of ``field_name`` from the struct base."""
        return self.fields[field_name].offset

    def field(self, field_name):
        """Return the :class:`Field` descriptor."""
        return self.fields[field_name]

    def view(self, mem, addr):
        """Return a :class:`StructView` of the instance at ``addr``."""
        return StructView(self, mem, addr)

    def __repr__(self):
        return "StructLayout(%s, %d bytes, %d fields)" % (
            self.name, self.size, len(self.fields))


class StructView:
    """Attribute-style access to one struct instance in memory.

    ``view.get("key")`` / ``view.set("key", v)`` issue the corresponding
    typed loads/stores through the bound accessor. Scalar fields read/write
    integers; ``bytes`` fields read/write byte strings; array fields take
    an extra index.
    """

    __slots__ = ("layout", "_mem", "addr")

    def __init__(self, layout, mem, addr):
        self.layout = layout
        self._mem = mem
        self.addr = addr

    def _field_addr(self, field, index):
        if index:
            if field.kind == "bytes" or index >= field.count:
                raise ConfigError(
                    "index %d out of range for %s" % (index, field.name))
            return self.addr + field.offset + index * _FIELD_SIZES[field.kind]
        return self.addr + field.offset

    def get(self, field_name, index=0):
        """Load field ``field_name`` (element ``index`` for arrays)."""
        field = self.layout.fields[field_name]
        addr = self._field_addr(field, index)
        # Explicit dispatch: structure code reads fields on every
        # operation, and u64 is the common word type; ``getattr`` with a
        # freshly concatenated method name costs more than the load.
        kind = field.kind
        if kind == "u64":
            return self._mem.read_u64(addr)
        if kind == "bytes":
            return self._mem.read(addr, field.size)
        if kind == "u32":
            return self._mem.read_u32(addr)
        if kind == "u16":
            return self._mem.read_u16(addr)
        return self._mem.read_u8(addr)

    def set(self, field_name, value, index=0):
        """Store ``value`` to field ``field_name``."""
        field = self.layout.fields[field_name]
        addr = self._field_addr(field, index)
        kind = field.kind
        if kind == "u64":
            self._mem.write_u64(addr, value)
            return
        if kind == "bytes":
            value = bytes(value)
            if len(value) != field.size:
                raise ConfigError(
                    "field %s expects %d bytes, got %d"
                    % (field_name, field.size, len(value)))
            self._mem.write(addr, value)
            return
        if kind == "u32":
            self._mem.write_u32(addr, value)
            return
        if kind == "u16":
            self._mem.write_u16(addr, value)
            return
        self._mem.write_u8(addr, value)

    def field_addr(self, field_name, index=0):
        """Address of a field, for passing to other code."""
        return self._field_addr(self.layout.fields[field_name], index)

    def __repr__(self):
        return "StructView(%s @0x%x)" % (self.layout.name, self.addr)
