"""Typed memory accessors — the load/store interface structures are written to.

This is the reproduction's stand-in for Pin-style binary instrumentation
(paper §4): instead of rewriting loads and stores at runtime, data
structure code performs every access through a :class:`MemoryAccessor`.
Binding the *same structure code* to different accessors yields the DRAM,
PM-direct, and vPM-via-PAX variants — the paper's black-box reuse claim.

``MemoryAccessor`` is an abstract byte interface plus typed u8..u64
helpers. Concrete accessors:

* :class:`RawAccessor` — direct, zero-latency access to an address space
  (used by recovery code and tests that need an omniscient view).
* Cache-mediated accessors live with the machine model
  (:mod:`repro.libpax.machine`), because they need a CPU context.
"""

import struct

from repro.errors import AddressError
from repro.util.constants import WORD_SIZE

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


class MemoryAccessor:
    """Abstract load/store interface with typed integer helpers.

    Subclasses implement :meth:`read` and :meth:`write`; everything else is
    derived. All integers are little-endian and unsigned, matching the
    C-style layouts in :mod:`repro.structures`.
    """

    def read(self, addr, length):
        """Load ``length`` bytes at ``addr``."""
        raise NotImplementedError

    def write(self, addr, data):
        """Store ``data`` (bytes) at ``addr``."""
        raise NotImplementedError

    # -- typed helpers ----------------------------------------------------

    def read_u8(self, addr):
        """Load an unsigned byte."""
        return _U8.unpack(self.read(addr, 1))[0]

    def write_u8(self, addr, value):
        """Store an unsigned byte."""
        self.write(addr, _U8.pack(value & 0xFF))

    def read_u16(self, addr):
        """Load a little-endian u16."""
        return _U16.unpack(self.read(addr, 2))[0]

    def write_u16(self, addr, value):
        """Store a little-endian u16."""
        self.write(addr, _U16.pack(value & 0xFFFF))

    def read_u32(self, addr):
        """Load a little-endian u32."""
        return _U32.unpack(self.read(addr, 4))[0]

    def write_u32(self, addr, value):
        """Store a little-endian u32."""
        self.write(addr, _U32.pack(value & 0xFFFFFFFF))

    def read_u64(self, addr):
        """Load a little-endian u64 (the structure word type)."""
        return _U64.unpack(self.read(addr, WORD_SIZE))[0]

    def write_u64(self, addr, value):
        """Store a little-endian u64."""
        self.write(addr, _U64.pack(value & 0xFFFFFFFFFFFFFFFF))

    def read_bytes(self, addr, length):
        """Alias of :meth:`read` for symmetry with ``write_bytes``."""
        return self.read(addr, length)

    def write_bytes(self, addr, data):
        """Alias of :meth:`write`."""
        self.write(addr, data)

    def memset(self, addr, length, value=0):
        """Store ``length`` copies of ``value`` starting at ``addr``."""
        if length < 0:
            raise AddressError("memset length must be non-negative")
        self.write(addr, bytes([value]) * length)

    def memcpy(self, dst, src, length):
        """Copy ``length`` bytes from ``src`` to ``dst`` through this accessor."""
        self.write(dst, self.read(src, length))


class RawAccessor(MemoryAccessor):
    """Direct access to an :class:`~repro.mem.address_space.AddressSpace`.

    Bypasses caches and charges no simulated time. Used for recovery,
    verification, and building initial pool contents.
    """

    def __init__(self, space):
        self._space = space

    def read(self, addr, length):
        return self._space.read(addr, length)

    def write(self, addr, data):
        self._space.write(addr, data)


class OffsetAccessor(MemoryAccessor):
    """A view of another accessor shifted by a base address.

    Lets pool-relative offsets be used as addresses; structures stay
    position-independent (everything they store is a pool offset), which is
    what makes recovery after re-mapping possible.
    """

    def __init__(self, inner, base):
        self._inner = inner
        self.base = base

    def read(self, addr, length):
        return self._inner.read(self.base + addr, length)

    def write(self, addr, data):
        self._inner.write(self.base + addr, data)


class CountingAccessor(MemoryAccessor):
    """Wraps another accessor and counts loads/stores (for write-amp math)."""

    def __init__(self, inner):
        self._inner = inner
        self.loads = 0
        self.stores = 0
        self.bytes_loaded = 0
        self.bytes_stored = 0

    def read(self, addr, length):
        self.loads += 1
        self.bytes_loaded += length
        return self._inner.read(addr, length)

    def write(self, addr, data):
        data = bytes(data)
        self.stores += 1
        self.bytes_stored += len(data)
        self._inner.write(addr, data)
