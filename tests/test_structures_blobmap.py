"""The blob map: variable-size values, out-of-line storage, crashes."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ReproError
from repro.libpax.allocator import PmAllocator
from repro.mem.accessor import OffsetAccessor, RawAccessor
from repro.mem.address_space import AddressSpace
from repro.mem.physical import MemoryDevice
from repro.structures.blobmap import BlobMap
from tests.conftest import make_pax_pool

ARENA = 2 << 20


def fresh():
    space = AddressSpace()
    space.map_device(4096, MemoryDevice("m", ARENA))
    mem = OffsetAccessor(RawAccessor(space), 4096)
    return mem, PmAllocator.create(mem, ARENA)


class TestBasics:
    def test_put_get_bytes(self):
        mem, alloc = fresh()
        table = BlobMap.create(mem, alloc, capacity=16)
        table.put(1, b"hello world")
        assert table.get(1) == b"hello world"
        assert table.get(2) is None

    def test_value_sizes(self):
        mem, alloc = fresh()
        table = BlobMap.create(mem, alloc, capacity=16)
        for size in (0, 1, 8, 100, 1024, 4096):
            table.put(size, bytes([size % 256]) * size)
        for size in (0, 1, 8, 100, 1024, 4096):
            assert table.get(size) == bytes([size % 256]) * size

    def test_update_replaces_value(self):
        mem, alloc = fresh()
        table = BlobMap.create(mem, alloc, capacity=16)
        assert table.put(1, b"short")
        assert not table.put(1, b"a much longer replacement value")
        assert table.get(1) == b"a much longer replacement value"
        assert len(table) == 1

    def test_update_frees_old_blob(self):
        mem, alloc = fresh()
        table = BlobMap.create(mem, alloc, capacity=16)
        table.put(1, b"x" * 64)
        frees_before = alloc.stats.get("frees")
        table.put(1, b"y" * 64)
        assert alloc.stats.get("frees") == frees_before + 1
        # The freed 64 B class block is reused by the next same-size blob.
        table.put(2, b"z" * 64)
        assert table.get(1) == b"y" * 64
        assert table.get(2) == b"z" * 64

    def test_remove(self):
        mem, alloc = fresh()
        table = BlobMap.create(mem, alloc, capacity=16)
        table.put(1, b"bye")
        assert table.remove(1)
        assert not table.remove(1)
        assert table.get(1) is None

    def test_grow_preserves_blobs(self):
        mem, alloc = fresh()
        table = BlobMap.create(mem, alloc, capacity=4)
        pairs = {key: ("value-%d" % key).encode() * 3 for key in range(60)}
        for key, value in pairs.items():
            table.put(key, value)
        assert table.to_dict() == pairs

    def test_attach(self):
        mem, alloc = fresh()
        table = BlobMap.create(mem, alloc, capacity=16)
        table.put(3, b"persist")
        attached = BlobMap.attach(mem, alloc, table.root)
        assert attached.get(3) == b"persist"

    def test_attach_garbage_rejected(self):
        mem, alloc = fresh()
        with pytest.raises(ReproError):
            BlobMap.attach(mem, alloc, 4096)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(
        st.sampled_from(["put", "remove", "get"]),
        st.integers(0, 20),
        st.binary(max_size=200)), max_size=60))
    def test_matches_python_dict(self, ops):
        mem, alloc = fresh()
        table = BlobMap.create(mem, alloc, capacity=4)
        model = {}
        for kind, key, value in ops:
            if kind == "put":
                table.put(key, value)
                model[key] = value
            elif kind == "remove":
                assert table.remove(key) == (key in model)
                model.pop(key, None)
            else:
                assert table.get(key) == model.get(key)
        assert table.to_dict() == model


class TestBlobMapOnPax:
    def test_snapshot_rollback_with_large_values(self, pax_pool):
        table = pax_pool.persistent(BlobMap, capacity=64)
        for key in range(10):
            table.put(key, bytes([key]) * 500)
        pax_pool.persist()
        snapshot = dict(table.to_dict())
        table.put(5, b"\xff" * 500)       # overwrite, not persisted
        table.put(99, b"new" * 100)
        pax_pool.crash()
        pax_pool.restart()
        recovered = pax_pool.reattach_root(BlobMap)
        assert recovered.to_dict() == snapshot

    def test_update_never_splices(self, pax_pool):
        # Crash mid-update: the value is the old blob or the new blob,
        # never a mixture — even mid-epoch (after recovery, it is the
        # persisted old one).
        from repro.crashtest import CrashInjector
        table = pax_pool.persistent(BlobMap, capacity=64)
        table.put(1, b"A" * 300)
        pax_pool.persist()
        injector = CrashInjector(pax_pool.machine)
        injector.arm(3)
        crashed = injector.run(lambda: table.put(1, b"B" * 300))
        assert crashed
        pax_pool.restart()
        recovered = pax_pool.reattach_root(BlobMap)
        assert recovered.get(1) == b"A" * 300
