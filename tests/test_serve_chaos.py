"""Chaos drills: crash/recover cycles under live serving traffic.

The drill contract (docs/serving.md): a seeded drill with mid-traffic
crashes completes with zero PaxSan findings, zero lost acknowledged
writes, bounded recovery time — and replays byte-for-byte from its seed.
"""

import pytest

from repro.serve import ServeConfig, build_timeline, run_drill
from repro.sim.rng import DeterministicRng


def _drill(**overrides):
    kwargs = dict(clients=4, ops_per_client=120, record_count=48,
                  seed=4242, sanitize=True)
    kwargs.update(overrides)
    return run_drill(ServeConfig(**kwargs))


class TestGoldenDeterminism:
    def test_same_seed_same_everything(self):
        a = _drill(crashes=6, storms=1, shards=2)
        b = _drill(crashes=6, storms=1, shards=2)
        assert a.sim_ns == b.sim_ns
        assert a.ticks == b.ticks
        assert a.to_prometheus() == b.to_prometheus()

    def test_different_seeds_diverge(self):
        a = _drill(crashes=2, seed=1)
        b = _drill(crashes=2, seed=2)
        assert a.sim_ns != b.sim_ns


class TestCrashRecoverDrill:
    def test_ten_cycles_under_load_hold_the_contract(self):
        report = _drill(crashes=10, recovery_deadline_ns=50_000_000.0)
        slo = report.slo
        assert slo.crashes.value == 10
        assert slo.recoveries.value == 10
        assert slo.lost_acked_writes.value == 0
        assert report.sanitizer_findings == 0
        assert slo.recovery_deadline_breaches.value == 0
        # Recovery time is measured and bounded.
        assert slo.recovery_ns.count == 10
        assert slo.recovery_ns.max <= 50_000_000.0
        assert report.ok
        # The drill still served its traffic to completion.
        assert all(client.done for client in report.harness.clients)
        assert slo.completed.value > 0

    def test_inflight_requests_fail_typed_and_retry(self):
        report = _drill(crashes=8)
        slo = report.slo
        # Crashes landed while requests were queued/parked/in-flight:
        # every one of those surfaced as a typed failure, and clients
        # retried rather than wedging.
        assert slo.crash_failures.value > 0
        assert slo.retries.value > 0
        assert report.ok

    def test_recovery_deadline_breaches_are_counted_not_fatal(self):
        # An impossible deadline: every cycle breaches, the drill still
        # completes consistently, and the verdict fails on the SLO.
        report = _drill(crashes=4, recovery_deadline_ns=0.001)
        slo = report.slo
        assert slo.recovery_deadline_breaches.value == 4
        assert slo.lost_acked_writes.value == 0
        assert not report.ok

    def test_sharded_drill_recovers_per_shard(self):
        report = _drill(crashes=6, shards=2)
        assert report.slo.recoveries.value == 6
        assert report.slo.lost_acked_writes.value == 0
        assert report.ok
        # Both shards took real traffic.
        for shard in report.harness.shards:
            assert shard.pool.machine.stats.get("persists") > 0


class TestStormsAndBackpressure:
    def test_link_storm_degrades_to_read_only(self):
        from repro.faults.plan import LinkFaultSpec
        storm = LinkFaultSpec(drop_rate=0.4, jitter=0.5, max_retries=64)
        report = _drill(storms=1, storm_link=storm,
                        read_only_after_retransmits=2)
        slo = report.slo
        assert slo.storms_entered.value == 1
        assert slo.degraded_entered.value == 1
        assert slo.read_only_rejects.value > 0
        # Reads kept flowing; rejected writes retried once the storm
        # passed, so the drill still converged.
        assert all(client.done for client in report.harness.clients)
        assert report.ok

    def test_tiny_queue_sheds_load_with_overload(self):
        report = _drill(clients=6, ops_per_client=60, queue_depth=1,
                        sanitize=False)
        assert report.slo.rejected_overload.value > 0
        assert all(client.done for client in report.harness.clients)

    def test_stale_queue_heads_time_out(self):
        report = _drill(clients=6, ops_per_client=60, timeout_ns=1.0,
                        sanitize=False, max_attempts=3)
        assert report.slo.timeouts.value > 0
        assert all(client.done for client in report.harness.clients)


class TestTimelineScaling:
    def test_build_timeline_is_valid_and_deterministic(self):
        rng = DeterministicRng(11).fork("t")
        a = build_timeline(1000, crashes=10, storms=2,
                           rng=DeterministicRng(11).fork("t"))
        b = build_timeline(1000, crashes=10, storms=2, rng=rng)
        assert a.describe() == b.describe()
        assert len(a.of_kind("crash")) == 10
        assert len(a.of_kind("link-storm")) == 2

    def test_error_budget_accounts_for_abandoned_ops(self):
        report = _drill(clients=6, ops_per_client=60, timeout_ns=1.0,
                        sanitize=False, max_attempts=2)
        slo = report.slo
        assert slo.gave_up.value == sum(c.abandoned
                                        for c in report.harness.clients)
        if slo.gave_up.value:
            assert slo.error_budget_spent > 0.0
