"""SLO accounting for the serving harness.

One :class:`SloTracker` owns every serving-level series — request
latency by kind (in simulated ns), group-commit batch sizes, recovery
times, admission-control verdicts, the error budget — as a single
:class:`~repro.util.stats.StatGroup` so the existing
:class:`~repro.obs.metrics.MetricsRegistry` machinery exports it
unchanged (Prometheus text, sim-stamped snapshots, p50/p99/p999
quantiles).

Every value is simulated time or a deterministic count: two drills at
the same seed produce byte-identical exports.
"""

from repro.util.stats import StatGroup, ratio

#: Request kinds the harness serves (and buckets latency by).
REQUEST_KINDS = ("get", "put", "remove", "persist")


class SloTracker:
    """Latency/error-budget bookkeeping for one serving drill."""

    def __init__(self):
        self.stats = StatGroup("serve")
        stats = self.stats
        # Bound once; the harness bumps these on its per-request path.
        self.admitted = stats.counter("admitted")
        self.completed = stats.counter("completed")
        self.rejected_overload = stats.counter("rejected_overload")
        self.timeouts = stats.counter("timeouts")
        self.read_only_rejects = stats.counter("read_only_rejects")
        self.crash_failures = stats.counter("crash_failures")
        self.retries = stats.counter("retries")
        self.gave_up = stats.counter("gave_up")
        self.replayed = stats.counter("replayed")
        self.crashes = stats.counter("crashes")
        self.recoveries = stats.counter("recoveries")
        self.recovery_deadline_breaches = stats.counter(
            "recovery_deadline_breaches")
        self.lost_acked_writes = stats.counter("lost_acked_writes")
        self.batches = stats.counter("batches")
        self.batched_persists = stats.counter("batched_persists")
        self.storms_entered = stats.counter("storms_entered")
        self.degraded_entered = stats.counter("degraded_entered")
        self.request_ns = stats.histogram("request_ns")
        self.queue_depth = stats.histogram("queue_depth")
        self.batch_size = stats.histogram("batch_size")
        self.recovery_ns = stats.histogram("recovery_ns")
        self._by_kind = {kind: stats.histogram(kind + "_ns")
                         for kind in REQUEST_KINDS}

    # -- recording ---------------------------------------------------------

    def record_completion(self, kind, latency_ns):
        """A request finished successfully after ``latency_ns`` sim-ns."""
        self.completed.add(1)
        self.request_ns.record(latency_ns)
        histogram = self._by_kind.get(kind)
        if histogram is not None:
            histogram.record(latency_ns)

    def record_recovery(self, report, deadline_ns=None):
        """A crash/recover cycle finished; ``report`` is its RecoveryReport."""
        self.recoveries.add(1)
        self.recovery_ns.record(report.elapsed_ns)
        if deadline_ns is not None and report.elapsed_ns > deadline_ns:
            self.recovery_deadline_breaches.add(1)

    # -- verdicts ----------------------------------------------------------

    @property
    def failed_requests(self):
        """Requests that exhausted their retry budget."""
        return self.gave_up.value

    @property
    def error_budget_spent(self):
        """Fraction of admitted requests that ultimately failed."""
        return ratio(self.gave_up.value, self.admitted.value)

    def latency_percentiles(self, kind=None):
        """``(p50, p99, p999)`` of request latency in sim-ns."""
        histogram = (self.request_ns if kind is None
                     else self._by_kind[kind])
        return (histogram.percentile(50.0), histogram.percentile(99.0),
                histogram.percentile(99.9))

    def summary_lines(self):
        """Human-readable drill summary (the CLI prints these)."""
        p50, p99, p999 = self.latency_percentiles()
        lines = [
            "serve: %d admitted, %d completed, %d retries, %d gave up "
            "(error budget %.4f)"
            % (self.admitted.value, self.completed.value,
               self.retries.value, self.gave_up.value,
               self.error_budget_spent),
            "       rejected: %d overload, %d timeout, %d read-only, "
            "%d crash-failed; %d replayed after recovery"
            % (self.rejected_overload.value, self.timeouts.value,
               self.read_only_rejects.value, self.crash_failures.value,
               self.replayed.value),
            "       latency p50/p99/p999: %.0f / %.0f / %.0f sim-ns "
            "(%d samples)"
            % (p50, p99, p999, self.request_ns.count),
            "       group commit: %d batches covering %d persists "
            "(mean batch %.2f)"
            % (self.batches.value, self.batched_persists.value,
               self.batch_size.mean),
            "       chaos: %d crashes, %d recoveries (mean %.0f sim-ns, "
            "max %.0f), %d deadline breaches, %d lost acked writes"
            % (self.crashes.value, self.recoveries.value,
               self.recovery_ns.mean,
               self.recovery_ns.max if self.recovery_ns.count else 0.0,
               self.recovery_deadline_breaches.value,
               self.lost_acked_writes.value),
        ]
        return lines
