"""The accepted-findings baseline for ``repro.staticcheck``.

Flow checkers are deliberately suspicious, and some of what they flag
is *accepted* behaviour — the volatile structures store without a gate
because durability is the PAX device's job, and ``pm_direct`` is the
intentionally crash-inconsistent baseline. Those findings are recorded
here once, with a justification, instead of being sprinkled through the
source as inline ignores; CI then fails only on findings *beyond* the
baseline, so new code cannot silently add violations.

File format (``staticcheck-baseline.txt``)::

    # justification for the entry below
    repro/structures/hashmap.py persist-order 14

Each entry line is ``<path-key> <rule-id> <count>``: up to ``count``
findings of ``rule-id`` in that file are accepted. The path key is the
``repro/``-relative path, so the baseline is stable no matter where the
tree is checked out or which prefix the CLI was given. Comments (and
the justification convention: comment lines directly above an entry)
belong to the entry that follows them. ``--write-baseline`` regenerates
entries and carries a placeholder justification for new ones.
"""

import os

from repro.errors import LintError

DEFAULT_BASELINE_NAME = "staticcheck-baseline.txt"


def path_key(path):
    """Canonical baseline key for ``path``: ``repro/``-relative when the
    file lives in a repro package, the normalized path otherwise."""
    norm = path.replace(os.sep, "/")
    marker = "/repro/"
    index = norm.rfind(marker)
    if index >= 0:
        return "repro/" + norm[index + len(marker):]
    if norm.startswith("repro/"):
        return norm
    return norm.lstrip("./")


class Baseline:
    """Accepted findings: ``{(path_key, rule_id): count}`` plus notes."""

    def __init__(self):
        self.entries = {}
        self.notes = {}

    @classmethod
    def load(cls, path):
        """Parse a baseline file; raises LintError on malformed lines.

        A justification comment must be followed by the entry it
        excuses: once the first entry has been seen, a comment block
        terminated by a blank line (or the end of the file) without an
        entry line is an *orphaned justification* — its entry was
        deleted but its prose stayed behind — and loading fails. The
        leading file header (comments before the first entry's block)
        is exempt.
        """
        baseline = cls()
        pending_note = []
        note_line = None
        seen_entry = False

        def orphaned(line_number):
            raise LintError(
                "%s:%d: orphaned justification comment — no baseline "
                "entry follows it; delete the comment along with the "
                "entry it excused" % (path, line_number))

        with open(path, "r", encoding="utf-8") as handle:
            for line_number, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line:
                    if pending_note and seen_entry:
                        orphaned(note_line)
                    pending_note = []
                    continue
                if line.startswith("#"):
                    if not pending_note:
                        note_line = line_number
                    pending_note.append(line.lstrip("# "))
                    continue
                parts = line.split()
                if len(parts) != 3 or not parts[2].isdigit():
                    raise LintError(
                        "%s:%d: baseline entries are '<path> <rule> "
                        "<count>', got %r" % (path, line_number, line))
                key = (parts[0], parts[1])
                baseline.entries[key] = int(parts[2])
                if pending_note:
                    baseline.notes[key] = " ".join(pending_note)
                pending_note = []
                seen_entry = True
        if pending_note and seen_entry:
            orphaned(note_line)
        return baseline

    def apply(self, findings):
        """Split ``findings`` into (new, accepted) against the baseline.

        Consumes up to ``count`` findings per ``(file, rule)`` entry in
        report order; anything beyond the recorded count is new.
        """
        remaining = dict(self.entries)
        new = []
        accepted = []
        for finding in findings:
            key = (path_key(finding.path), finding.rule_id)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                accepted.append(finding)
            else:
                new.append(finding)
        return new, accepted

    def dead_entries(self, findings, checked_keys):
        """Entries whose file/rule no longer produces *any* finding.

        Unlike :meth:`stale_entries` (an oversized count, reported as a
        note) a dead entry is a justification for nothing — the code it
        excused was fixed or deleted — and accumulating them hides real
        regressions, so the CLI fails on these. Only entries whose file
        was actually checked this run (``path_key`` in ``checked_keys``)
        are considered, so partial-tree invocations cannot false-alarm.
        Returns ``[(path, rule), ...]`` sorted.
        """
        counts = {}
        for finding in findings:
            key = (path_key(finding.path), finding.rule_id)
            counts[key] = counts.get(key, 0) + 1
        return sorted(key for key in self.entries
                      if key[0] in checked_keys and counts.get(key, 0) == 0)

    def stale_entries(self, findings):
        """Entries whose recorded count exceeds current findings — a sign
        the baseline can shrink. Returns ``[(path, rule, unused), ...]``."""
        counts = {}
        for finding in findings:
            key = (path_key(finding.path), finding.rule_id)
            counts[key] = counts.get(key, 0) + 1
        stale = []
        for key, allowed in sorted(self.entries.items()):
            unused = allowed - counts.get(key, 0)
            if unused > 0:
                stale.append((key[0], key[1], unused))
        return stale


def write_baseline(findings, path, notes=None):
    """Write a baseline accepting exactly ``findings``.

    ``notes`` maps ``(path_key, rule_id)`` to a justification; entries
    without one get a TODO marker so the review catches them.
    """
    counts = {}
    for finding in findings:
        key = (path_key(finding.path), finding.rule_id)
        counts[key] = counts.get(key, 0) + 1
    notes = notes or {}
    lines = [
        "# repro.staticcheck accepted-findings baseline.",
        "# Format: '<repro-relative path> <rule-id> <count>'; the comment",
        "# above each entry is its justification. Regenerate with",
        "#   python -m repro.staticcheck --write-baseline <paths>",
        "# and justify anything new. See docs/analysis-tools.md.",
        "",
    ]
    for key in sorted(counts):
        note = notes.get(key, "TODO: justify this accepted finding")
        lines.append("# %s" % note)
        lines.append("%s %s %d" % (key[0], key[1], counts[key]))
        lines.append("")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))


def discover_baseline(paths):
    """Find the default baseline file: the current directory first, then
    upward from the first target path (so absolute-path invocations from
    elsewhere still find the repo's committed baseline)."""
    candidate = os.path.join(os.getcwd(), DEFAULT_BASELINE_NAME)
    if os.path.isfile(candidate):
        return candidate
    if paths:
        probe = os.path.abspath(paths[0])
        if os.path.isfile(probe):
            probe = os.path.dirname(probe)
        while True:
            candidate = os.path.join(probe, DEFAULT_BASELINE_NAME)
            if os.path.isfile(candidate):
                return candidate
            parent = os.path.dirname(probe)
            if parent == probe:
                return None
            probe = parent
    return None
