"""Seeded ``pm-escape`` violations.

Raw device objects leak out of this (non-owner) module: through a
public return, a public attribute, and an argument to a foreign-module
call — including through an alias.  The test suite asserts staticcheck
reports exactly these lines; ``escape_clean.py`` must report none.
"""

from repro.pm.device import PmDevice
from repro.workloads.ycsb import run_workload


class PoolHandle:
    def open(self, path, size):
        device = PmDevice(path, size_bytes=size)
        self.device = device  # VIOLATION: raw device on a public attribute
        return device  # VIOLATION: raw device via a public return


def benchmark(path, size):
    dev = PmDevice(path, size_bytes=size)
    handle = dev
    run_workload(handle)  # VIOLATION: aliased raw device to foreign module
