"""Figure 2b: write-only throughput vs thread count.

Measures single-thread per-op latency and media traffic in full
simulation, then applies the roofline thread-scaling model
(DESIGN.md §5 documents this substitution). Prints the three paper curves
(DRAM / PM Direct / PMDK) plus PAX as the paper's predicted fourth curve
and ``autopass`` (the staticcheck-generated gate placement), and checks:

* the ordering DRAM > PM Direct > PMDK at every thread count;
* claim-pmdk-2x — PM Direct ends roughly 2x above PMDK at 32 threads;
* the paper's optimism: PAX lands above PMDK (asynchronous logging);
* auto-placed gates cost no more than hand-written ones: the autopass
  curve tracks PMDK to within a small tolerance.
"""

from benchmarks.conftest import OPS, RECORDS, bench_backend
from repro.analysis.report import Table
from repro.analysis.throughput import FIG2B_THREADS, figure_2b

BACKENDS = ("dram", "pm_direct", "pmdk", "autopass", "pax")


def run_fig2b():
    factories = {name: (lambda n=name: bench_backend(n))
                 for name in BACKENDS}
    return figure_2b(factories, record_count=RECORDS, op_count=OPS)


def test_fig2b_throughput(benchmark):
    figure = benchmark.pedantic(run_fig2b, rounds=1, iterations=1)

    table = Table("Figure 2b: throughput [Mops] vs threads",
                  ["backend"] + [str(t) for t in FIG2B_THREADS])
    for name in BACKENDS:
        table.add_row(name, *[figure.curves[name][t] for t in FIG2B_THREADS])
    table.show()
    profile_table = Table("single-thread profiles",
                          ["backend", "ns/op", "media wB/op", "media rB/op"])
    for name in BACKENDS:
        profile = figure.profiles[name]
        profile_table.add_row(name, profile.per_op_ns,
                              profile.write_bytes_per_op,
                              profile.read_bytes_per_op)
    profile_table.show()
    ratio = figure.ratio_at("pm_direct", "pmdk", 32)
    print("claim-pmdk-2x: PM Direct / PMDK at 32 threads = %.2fx "
          "(paper: ~2x)" % ratio)

    for threads in FIG2B_THREADS:
        assert figure.at("dram", threads) > figure.at("pm_direct", threads)
        assert figure.at("pm_direct", threads) > figure.at("pmdk", threads)
    assert 1.2 < ratio < 3.5
    # The paper's §5 prediction: PAX beats hand-crafted PMDK.
    assert figure.at("pax", 32) > figure.at("pmdk", 32)
    # Auto-placed gates match hand-written placement: same WAL scheme,
    # same commit batching, so the curves coincide within 10%.
    for threads in FIG2B_THREADS:
        hand = figure.at("pmdk", threads)
        auto = figure.at("autopass", threads)
        assert abs(auto - hand) <= 0.10 * hand
