"""The paging+PAX hybrid (§5.1): routing, faults, aliasing, crashes."""

import pytest

from repro.baselines import make_backend
from repro.crashtest import CrashInjector
from tests.conftest import small_cache_kwargs


def build(**overrides):
    kwargs = dict(pool_size=4 * 1024 * 1024, log_size=256 * 1024,
                  capacity=64)
    kwargs.update(small_cache_kwargs())
    kwargs.update(overrides)
    return make_backend("hybrid", **kwargs)


class TestRouting:
    def test_functional_equivalence(self):
        backend = build()
        for key in range(150):
            backend.put(key, key * 2)
        backend.persist()
        assert backend.to_dict() == {key: key * 2 for key in range(150)}

    def test_one_fault_per_written_page_per_epoch(self):
        backend = build()
        backend.put(1, 1)
        faults = backend.fault_count
        assert faults > 0
        backend.put(1, 2)          # same pages, same epoch
        assert backend.fault_count == faults
        backend.persist()          # remap: next write faults again
        backend.put(1, 3)
        assert backend.fault_count > faults

    def test_reads_after_persist_take_direct_path(self):
        backend = build()
        for key in range(50):
            backend.put(key, key)
        backend.persist()
        direct_before = backend._mem.stats.get("direct_reads")
        device_before = backend.machine.device.stats.get("rd_shared")
        for key in range(50):
            assert backend.get(key) == key
        assert backend._mem.stats.get("direct_reads") > direct_before
        # Cold direct reads do not touch the device at all.
        assert backend.machine.device.stats.get("rd_shared") \
            == device_before

    def test_reads_of_written_pages_use_vpm(self):
        backend = build()
        backend.put(1, 1)
        vpm_before = backend._mem.stats.get("vpm_reads")
        backend.get(1)
        assert backend._mem.stats.get("vpm_reads") > vpm_before

    def test_aliasing_reads_see_latest_committed_value(self):
        backend = build()
        backend.put(7, 100)
        backend.persist()
        assert backend.get(7) == 100     # direct path
        backend.put(7, 200)              # fault, vPM path
        assert backend.get(7) == 200     # vPM path sees the new value
        backend.persist()
        assert backend.get(7) == 200     # direct path sees it too


class TestHybridCrash:
    def test_snapshot_semantics(self):
        backend = build()
        for key in range(30):
            backend.put(key, key)
        backend.persist()
        snapshot = dict(backend.to_dict())
        for key in range(30, 50):
            backend.put(key, key)
        backend.crash()
        backend.restart()
        assert backend.to_dict() == snapshot

    def test_mid_op_crash(self):
        backend = build()
        for key in range(10):
            backend.put(key, key)
        backend.persist()
        snapshot = dict(backend.to_dict())
        injector = CrashInjector(backend.machine)
        injector.arm(2)
        crashed = injector.run(lambda: backend.put(99, 990))
        assert crashed
        backend.restart()
        assert backend.to_dict() == snapshot

    def test_repeated_cycles(self):
        backend = build()
        committed = {}
        for cycle in range(3):
            for key in range(cycle * 10, cycle * 10 + 10):
                backend.put(key, cycle)
                committed[key] = cycle
            backend.persist()
            backend.put(777, 777)
            backend.crash()
            backend.restart()
            assert backend.to_dict() == committed


class TestHybridEconomics:
    def test_fewer_device_reads_than_pure_pax_when_read_heavy(self):
        def device_reads(name):
            backend = make_backend(
                name, pool_size=4 * 1024 * 1024, log_size=256 * 1024,
                capacity=64, **small_cache_kwargs())
            for key in range(200):
                backend.put(key, key)
            backend.persist()
            # Cold host caches (nothing dirty after persist): every get
            # misses to the line's home.
            backend.machine.hierarchy.drop_all()
            backend.machine.device.stats.reset()
            for key in range(200):
                backend.get(key)
            return backend.machine.device.stats.get("rd_shared")

        hybrid_reads = device_reads("hybrid")
        pax_reads = device_reads("pax")
        assert hybrid_reads == 0            # direct path: no device hop
        assert pax_reads > 0

    def test_line_granularity_logging_retained(self):
        # Unlike mprotect, the hybrid logs lines, not pages.
        backend = build()
        for key in range(50):
            backend.put(key, key)
        backend.persist()
        from repro.pm.log import ENTRY_SIZE
        log_bytes = backend.log_bytes
        pages_written = backend.fault_count
        # Far less than a page-granularity scheme would write.
        assert log_bytes < pages_written * 4096
