"""The serving harness: live traffic against PAX pools under chaos.

Everything upstream of this module is a piece — clients, admission,
group commit, chaos scheduling, SLO accounting; :class:`ServeHarness`
is the event loop that composes them over one shared
:class:`~repro.sim.clock.SimClock`:

1. **admit** every client whose think time has elapsed (deterministic
   client order), applying :class:`~repro.serve.admission.AdmissionQueue`
   backpressure at the door;
2. **serve** the queue head: execute get/put/remove against the key's
   shard inside ``pool.operation()``, or park a persist in every shard's
   :class:`~repro.serve.batch.GroupCommitBatcher`;
3. **flush** batches that are full, aged out, or blocking an otherwise
   idle server — one ``pool.persist()`` epoch commit acknowledges the
   whole batch (the paper's group commit, amortized across clients);
4. **crash** when the chaos controller says so: fail parked waiters and
   the interrupted request with typed errors, recover against the
   recovery-time SLO, verify zero acknowledged writes were lost, replay
   the queued requests, and keep serving.

The loop is single-threaded and sim-time driven: "concurrency" is
interleaving at request granularity, which is exactly the paper's §3.5
contract (persist only at quiescence) made structural — a persist can
never observe a half-applied operation because operations are atomic
loop steps.
"""

from dataclasses import dataclass, replace

from repro.crashtest.checker import SnapshotTracker, verify_map_integrity
from repro.crashtest.injector import CrashSignal
from repro.errors import (
    ConfigError,
    LinkError,
    ReadOnlyError,
    RecoveryTimeout,
    ServeError,
    ServeUnavailable,
)
from repro.cache.cache import CacheConfig
from repro.faults.device import FaultyPmDevice
from repro.faults.plan import LinkFaultSpec
from repro.libpax.pool import PaxPool
from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import AdmissionQueue
from repro.serve.batch import GroupCommitBatcher
from repro.serve.chaos import (
    DEFAULT_STORM_LINK,
    ChaosController,
    build_timeline,
)
from repro.serve.clients import RetryPolicy, SimClient, build_client_script
from repro.serve.slo import SloTracker
from repro.sim.clock import SimClock
from repro.sim.rng import DeterministicRng
from repro.structures.hashmap import HashMap

#: Small caches (the fuzzer's geometry): evictions and write-backs happen
#: within a few dozen requests, so crash windows land on dirty state.
POOL_SIZE = 2 * 1024 * 1024
LOG_SIZE = 64 * 1024

#: Base link-fault behaviour when a drill includes storms: near-clean.
DEFAULT_BASE_LINK = LinkFaultSpec(drop_rate=0.0005, jitter=0.5)


@dataclass(frozen=True)
class ServeConfig:
    """One drill's knobs. Frozen: a config is a replayable artifact."""

    clients: int = 4
    ops_per_client: int = 200
    record_count: int = 64
    mix: str = "A"
    seed: int = 1234
    shards: int = 1
    # Admission control.
    queue_depth: int = 64
    timeout_ns: float = 2_000_000.0
    # Group commit.
    batch_max: int = 16
    batch_delay_ns: float = 150_000.0
    # Client behaviour.
    mean_gap_ns: float = 2_000.0
    persist_every: int = 8
    delete_fraction: float = 0.05
    retry_base_ns: float = 50_000.0
    retry_cap_ns: float = 5_000_000.0
    retry_jitter: float = 0.5
    max_attempts: int = 8
    # Chaos.
    crashes: int = 0
    storms: int = 0
    recovery_deadline_ns: float = None
    read_only_after_retransmits: int = 8
    base_link: LinkFaultSpec = None
    storm_link: LinkFaultSpec = None
    # §3.2 log-growth valve: commit early past this undo-log fullness.
    log_valve_fraction: float = 0.85
    sanitize: bool = False
    # Miss-path mechanism spec applied to every shard's host hierarchy
    # (repro.cache.mechanisms); None keeps the historical miss path.
    mechanisms: str = None
    mech_policy: str = "lru"

    def validate(self):
        """Raise :class:`ConfigError` on nonsensical parameters."""
        from repro.cache.mechanisms import make_mechanisms
        make_mechanisms(self.mechanisms, self.mech_policy)
        if self.clients < 1:
            raise ConfigError("a drill needs at least one client")
        if self.shards < 1:
            raise ConfigError("a drill needs at least one shard")
        if self.ops_per_client < 1 or self.record_count < 1:
            raise ConfigError("ops_per_client and record_count must be >= 1")
        if not 0.0 < self.log_valve_fraction <= 1.0:
            raise ConfigError("log_valve_fraction must be in (0, 1]")
        return self

    def retry_policy(self):
        """The client :class:`RetryPolicy` this config describes."""
        return RetryPolicy(base_ns=self.retry_base_ns,
                           cap_ns=self.retry_cap_ns,
                           jitter=self.retry_jitter,
                           max_attempts=self.max_attempts)


class ShardState:
    """One PAX pool plus its serving-side bookkeeping."""

    def __init__(self, index, pool, clock, batch_max, batch_delay_ns):
        self.index = index
        self.pool = pool
        self.structure = pool.persistent(HashMap)
        #: Mirrors acknowledged state: ``snapshot`` is what recovery must
        #: reproduce exactly (the zero-lost-acked-writes contract).
        self.tracker = SnapshotTracker()
        self.batcher = GroupCommitBatcher(pool, clock, batch_max=batch_max,
                                          batch_delay_ns=batch_delay_ns)
        self.sanitizer = None


def _small_caches():
    return dict(
        l1_config=CacheConfig(size_bytes=4 * 1024, ways=4),
        l2_config=CacheConfig(size_bytes=16 * 1024, ways=8),
        llc_config=CacheConfig(size_bytes=64 * 1024, ways=8),
    )


class ServeHarness:
    """Runs one configured drill to completion."""

    def __init__(self, config, timeline=None, tracer=None):
        self.config = config.validate()
        self.clock = SimClock()
        self.tracer = tracer
        self.rng = DeterministicRng(config.seed).fork("serve")
        self.slo = SloTracker()
        self.queue = AdmissionQueue(max_depth=config.queue_depth,
                                    timeout_ns=config.timeout_ns)
        self.shards = [self._build_shard(index)
                       for index in range(config.shards)]
        self.clients = self._build_clients()
        self._outstanding = [False] * config.clients
        self.chaos = self._build_chaos(timeline)
        self.registry = self._build_registry()
        self.ticks = 0
        self._seq = 0

    # -- construction ------------------------------------------------------

    def _build_shard(self, index):
        config = self.config
        device = FaultyPmDevice("pm%d" % index, POOL_SIZE)
        link = config.base_link
        if link is None and config.storms:
            link = DEFAULT_BASE_LINK
        if link is not None:
            # Per-shard seed: shards must not replay identical drop
            # sequences in lockstep.
            link = replace(link, seed=link.seed + index * 1009)
        pool = PaxPool.map_pool(pm_device=device, pool_size=POOL_SIZE,
                                log_size=LOG_SIZE, clock=self.clock,
                                link_faults=link,
                                mechanisms=config.mechanisms,
                                mech_policy=config.mech_policy,
                                **_small_caches())
        shard = ShardState(index, pool, self.clock,
                           config.batch_max, config.batch_delay_ns)
        if config.sanitize:
            # Collect mode: a violation must not abort the drill —
            # findings fail the verdict at the end instead.
            from repro.sanitizer import PaxSanitizer
            shard.sanitizer = PaxSanitizer(raise_on_violation=False)
            shard.sanitizer.attach(pool.machine)
        if self.tracer is not None:
            # Same tee discipline as the crash fuzzer: the machine has
            # one tracer slot, so sanitizer + observer share it. The
            # attach() adopts the shared clock for event timestamps.
            self.tracer.attach(pool.machine)
            if shard.sanitizer is not None:
                from repro.obs.tracer import TeeTracer
                pool.machine.attach_tracer(
                    TeeTracer([shard.sanitizer, self.tracer]))
        return shard

    def _build_clients(self):
        config = self.config
        policy = config.retry_policy()
        clients = []
        for client_id in range(config.clients):
            script = build_client_script(
                config.mix, config.record_count, config.ops_per_client,
                seed=config.seed + client_id * 7919,
                delete_fraction=config.delete_fraction,
                persist_every=config.persist_every)
            clients.append(SimClient(
                client_id, script, self.rng.fork("client-%d" % client_id),
                policy, mean_gap_ns=config.mean_gap_ns))
        return clients

    def _build_chaos(self, timeline):
        config = self.config
        if timeline is None:
            if not config.crashes and not config.storms:
                return None
            total_ticks = sum(len(c.script) for c in self.clients)
            timeline = build_timeline(
                total_ticks, crashes=config.crashes, storms=config.storms,
                rng=self.rng.fork("timeline"),
                storm_link=config.storm_link or DEFAULT_STORM_LINK)
        return ChaosController(
            timeline, self.shards, self.rng.fork("chaos"), self.slo,
            read_only_after_retransmits=config.read_only_after_retransmits)

    def _build_registry(self):
        """Only crash-durable StatGroups: ``restart()`` rebuilds the
        hierarchy/device/link objects, so registering those would export
        stale pre-crash groups after the first cycle."""
        registry = MetricsRegistry(clock=self.clock, namespace="repro")
        registry.register(self.slo.stats, component="serve")
        for shard in self.shards:
            label = str(shard.index)
            registry.register(shard.pool.machine.stats,
                              component="machine", shard=label)
            registry.register(shard.pool.machine.pm.stats,
                              component="pm", shard=label)
        return registry

    # -- the event loop ----------------------------------------------------

    def run(self):
        """Serve every client script to completion; returns a ServeReport."""
        stalled = 0
        while True:
            self._admit(self.clock.now_ns)
            request, error = self.queue.pop(self.clock.now_ns)
            if request is not None:
                self._serve(request, error)
                stalled = 0
                continue
            if self._finished():
                break
            if self._idle():
                stalled = 0
            else:
                stalled += 1
                if stalled > len(self.clients) + 8:
                    raise ServeError(
                        "harness stalled: queue empty but %d client(s) "
                        "unfinished at %d sim-ns"
                        % (sum(not c.done for c in self.clients),
                           self.clock.now_ns))
        return ServeReport(self)

    def _finished(self):
        if len(self.queue):
            return False
        if any(shard.batcher.waiting for shard in self.shards):
            return False
        return all(client.done for client in self.clients)

    def _admit(self, now_ns):
        for client in self.clients:
            if self._outstanding[client.client_id] or not client.ready(now_ns):
                continue
            self._seq += 1
            request = client.make_request(self._seq, now_ns)
            verdict = self.queue.offer(request, now_ns)
            if verdict is not None:
                self.slo.rejected_overload.add(1)
                self._fail(request, verdict)
                continue
            self.slo.admitted.add(1)
            self._outstanding[client.client_id] = True

    def _idle(self):
        """No queued work: flush aged batches, else skip the clock ahead.

        The skip target is the earliest of the next client arrival and
        the next batch deadline — never early-flushing a batch, so a
        lone persist always waits its full coalescing window.
        """
        now_ns = self.clock.now_ns
        flushed = False
        for shard in self.shards:
            if shard.batcher.due(now_ns):
                self._commit(shard)
                flushed = True
        if flushed:
            return True
        targets = [client.next_arrival_ns for client in self.clients
                   if not client.done
                   and not self._outstanding[client.client_id]]
        for shard in self.shards:
            deadline = shard.batcher.deadline_ns
            if deadline is not None:
                targets.append(deadline)
        if not targets:
            return False
        target = min(targets)
        if target <= now_ns:
            return False
        self.clock.advance(target - now_ns)
        return True

    def _serve(self, request, error):
        self.ticks += 1
        if self.chaos is not None:
            forced = self.chaos.begin_tick(self.ticks)
            if forced is not None:
                self._chaos_crash(forced)
        if error is not None:
            self.slo.timeouts.add(1)
            self._fail(request, error)
            return
        if request.failed:
            # Crash-failed while queued (its client already notified by
            # the replay path); nothing to serve.
            return
        if self.chaos is not None and self.chaos.read_only \
                and request.kind != "get":
            self.slo.read_only_rejects.add(1)
            self._fail(request, ReadOnlyError(
                "pool degraded to read-only (link storm); %s c%d#%d rejected"
                % (request.kind, request.client_id, request.seq)))
            return
        self.slo.queue_depth.record(len(self.queue))
        if request.kind == "persist":
            # Group commit fans the durability barrier out to every shard.
            for shard in self.shards:
                shard.batcher.park(request)
        else:
            shard = self.shards[request.key % len(self.shards)]
            try:
                self._execute(shard, request)
            except CrashSignal:
                self._chaos_crash(self.chaos.armed_shard, inflight=request)
                return
            except LinkError:
                self._fail_stop(shard, inflight=request)
                return
            self._complete(request)
        for shard in self.shards:
            if shard.batcher.due(self.clock.now_ns):
                self._commit(shard)

    def _execute(self, shard, request):
        with shard.pool.operation():
            if request.kind == "get":
                shard.structure.get(request.key)
            elif request.kind == "put":
                shard.structure.put(request.key, request.value)
            else:
                shard.structure.remove(request.key)
        # Mirror only after the op completed: a crash mid-op rolls the
        # mutation back, and the mirror must roll back with it.
        if request.kind == "put":
            shard.tracker.put(request.key, request.value)
        elif request.kind == "remove":
            shard.tracker.remove(request.key)
        if shard.pool.log_fullness >= self.config.log_valve_fraction:
            self._commit(shard)

    # -- group commit -------------------------------------------------------

    def _commit(self, shard):
        """One epoch commit on ``shard``; acks every batched persist."""
        try:
            waiters, _commit_ns = shard.batcher.flush()
            if not waiters:
                # Log-valve or all-failed-batch path: commit without acks.
                shard.pool.persist()
        except LinkError:
            # The commit itself died on the fabric; the batch is still
            # parked, so fail-stop recovery fails every waiter.
            self._fail_stop(shard)
            return
        shard.tracker.persist()
        self.slo.batches.add(1)
        if waiters:
            self.slo.batched_persists.add(len(waiters))
            self.slo.batch_size.record(len(waiters))
        for waiter in waiters:
            if waiter.waiting_shards == 0 and not waiter.failed:
                self._complete(waiter)

    # -- completion/failure -------------------------------------------------

    def _complete(self, request):
        self._outstanding[request.client_id] = False
        now_ns = self.clock.now_ns
        self.slo.record_completion(request.kind,
                                   now_ns - request.submitted_ns)
        self.clients[request.client_id].on_success(now_ns)

    def _fail(self, request, error):
        self._outstanding[request.client_id] = False
        retried = self.clients[request.client_id].on_failure(
            error, self.clock.now_ns)
        if retried:
            self.slo.retries.add(1)
        else:
            self.slo.gave_up.add(1)

    # -- crash/recover ------------------------------------------------------

    def _chaos_crash(self, shard_index, inflight=None):
        """A scheduled chaos crash: power cut + fault plan + recovery."""
        self.chaos.crash_now(shard_index)
        self._recover_shard(self.shards[shard_index], inflight)

    def _fail_stop(self, shard, inflight=None):
        """Link retransmit budget exhausted mid-op: treat as fail-stop.

        The op may have half-applied before the link gave up; a clean
        power-cycle rolls it back to the committed snapshot — the
        principled recovery for a node whose fabric is gone.
        """
        shard.pool.crash()
        self.slo.crashes.add(1)
        self._recover_shard(shard, inflight)

    def _recover_shard(self, shard, inflight):
        config = self.config
        # Fail every parked persist (their epoch never committed) and the
        # interrupted request with a retryable typed error.
        for waiter in shard.batcher.fail_all():
            self.slo.crash_failures.add(1)
            self._fail(waiter, ServeUnavailable(
                "shard %d crashed before the batch committed; persist "
                "c%d#%d not durable"
                % (shard.index, waiter.client_id, waiter.seq)))
        # Uncommitted mutations rolled back with the crash.
        shard.tracker.pending.clear()
        if inflight is not None:
            self.slo.crash_failures.add(1)
            self._fail(inflight, ServeUnavailable(
                "shard %d crashed mid-%s; request c%d#%d not applied"
                % (shard.index, inflight.kind, inflight.client_id,
                   inflight.seq)))
        queued = self.queue.drain()
        deadline = config.recovery_deadline_ns
        try:
            report = shard.pool.restart(recovery_deadline_ns=deadline)
        except RecoveryTimeout as exc:
            # SLO blown, pool consistent: finish bring-up deadline-free.
            report = exc.report
            shard.pool.restart()
        self.slo.record_recovery(report, deadline_ns=deadline)
        shard.structure = shard.pool.reattach_root(HashMap)
        self._verify_shard(shard)
        if self.chaos is not None:
            self.chaos.reapply_storm(shard.index)
        # Replay the drained queue with fresh admission deadlines — the
        # recovery pause must not time every queued request out.
        now_ns = self.clock.now_ns
        for request in queued:
            if request.failed:
                continue
            self.slo.replayed.add(1)
            self.queue.offer(request, now_ns)

    def _verify_shard(self, shard):
        """Zero-lost-acked-writes: recovered state == last committed."""
        pairs = verify_map_integrity(shard.structure)
        expected = shard.tracker.snapshot
        if pairs != expected:
            lost = sum(1 for key in set(pairs) | set(expected)
                       if pairs.get(key) != expected.get(key))
            self.slo.lost_acked_writes.add(lost)


class ServeReport:
    """The finished drill: verdicts, exports, and raw handles."""

    def __init__(self, harness):
        self.harness = harness
        self.slo = harness.slo
        self.registry = harness.registry
        self.sim_ns = harness.clock.now_ns
        self.ticks = harness.ticks

    @property
    def sanitizer_findings(self):
        """Total PaxSan findings across shards (0 when not sanitizing)."""
        return sum(len(shard.sanitizer.findings)
                   for shard in self.harness.shards
                   if shard.sanitizer is not None)

    @property
    def ok(self):
        """The drill verdict: consistent, clean, and within budget."""
        return (self.slo.lost_acked_writes.value == 0
                and self.sanitizer_findings == 0
                and self.slo.recovery_deadline_breaches.value == 0)

    def to_prometheus(self):
        """The drill's metric series in Prometheus text exposition."""
        return self.registry.to_prometheus()

    def summary(self):
        """Human-readable drill summary (the CLI prints this)."""
        lines = ["drill: %d requests served over %.0f sim-ns (%d clients, "
                 "%d shard(s), seed %d)"
                 % (self.ticks, self.sim_ns, self.harness.config.clients,
                    len(self.harness.shards), self.harness.config.seed)]
        lines.extend(self.slo.summary_lines())
        if self.harness.config.sanitize:
            lines.append("       sanitizer: %d finding(s)"
                         % self.sanitizer_findings)
        lines.append("       verdict: %s" % ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def run_drill(config, timeline=None):
    """Build and run one drill; returns its :class:`ServeReport`."""
    return ServeHarness(config, timeline=timeline).run()
