#!/usr/bin/env python3
"""A small document store: variable-size values, ordered index, snapshots.

Puts the pieces together the way an application would: JSON documents in
a :class:`BlobMap` (out-of-line byte values), a :class:`BTree` secondary
index (timestamp -> doc id) for range queries, the §3.5 operation guard
around multi-structure updates, and crash recovery over the lot.
"""

import json

from repro import BlobMap, BTree, map_pool

DOCS = [
    {"id": 1, "ts": 100, "title": "PM crash consistency is hard",
     "body": "interrupted operations leave structures torn" * 4},
    {"id": 2, "ts": 250, "title": "WAL fixes it, slowly",
     "body": "log old values, fence, store, fence, repeat" * 4},
    {"id": 3, "ts": 180, "title": "Let the accelerator log for you",
     "body": "coherence messages reveal every first modification" * 4},
    {"id": 4, "ts": 400, "title": "Group commit amortizes everything",
     "body": "snapshots at epoch boundaries, async undo logging" * 4},
]


def main():
    pool = map_pool(pool_size=8 * 1024 * 1024, log_size=1024 * 1024)
    docs = pool.persistent_named("docs", BlobMap, capacity=64)
    by_time = pool.persistent_named("by_time", BTree)

    for doc in DOCS:
        # One logical operation spans two structures; the guard keeps a
        # concurrent persist() from splitting them.
        with pool.operation():
            docs.put(doc["id"], json.dumps(doc).encode())
            by_time.put(doc["ts"], doc["id"])
    pool.persist()
    print("stored %d documents (%d bytes of JSON), snapshot committed"
          % (len(docs), sum(len(json.dumps(d)) for d in DOCS)))

    # Range query through the ordered index.
    print("documents with 150 <= ts <= 300:")
    for ts, doc_id in by_time.items(lo=150, hi=300):
        doc = json.loads(docs.get(doc_id))
        print("  ts=%d  #%d  %r" % (ts, doc_id, doc["title"]))

    # An un-persisted edit, then the lights go out.
    with pool.operation():
        docs.put(99, b'{"id": 99, "draft": true}')
        by_time.put(999, 99)
    pool.crash()
    pool.restart()
    docs = pool.reattach_named("docs", BlobMap)
    by_time = pool.reattach_named("by_time", BTree)
    by_time.check_order()
    print("after crash: %d documents (the draft is gone, the index and "
          "store agree)" % len(docs))
    assert docs.get(99) is None
    assert by_time.get(999) is None
    assert len(docs) == len(DOCS)


if __name__ == "__main__":
    main()
