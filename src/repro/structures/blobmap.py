"""A hash map from u64 keys to variable-size byte values.

The u64→u64 :class:`~repro.structures.hashmap.HashMap` matches the
paper's 8 B microbenchmark; real key-value serving (YCSB proper) carries
~100 B-1 KiB values, where media bandwidth and write amplification start
to matter. This map stores values out-of-line:

Layout::

    header: magic | capacity | count | buckets_ptr | seed
    bucket: u64 head pointer
    node:   key | value_ptr | value_len | next
    value:  raw bytes in their own allocation

Updating a value allocates a new blob and frees the old one (PM-friendly:
no read-modify-write of large ranges), so a crash mid-update leaves either
the old or the new blob reachable — never a spliced one — under any of
the crash-consistent backends.
"""

from repro.errors import ReproError
from repro.mem.layout import StructLayout
from repro.structures.hashmap import _mix
from repro.util.constants import NULL_ADDR, WORD_SIZE

BLOB_MAGIC = 0x504158424C423031     # "PAXBLB01"

_HEADER = StructLayout("blobmap_header", [
    ("magic", "u64"),
    ("capacity", "u64"),
    ("count", "u64"),
    ("buckets", "u64"),
    ("seed", "u64"),
])

_NODE = StructLayout("blobmap_node", [
    ("key", "u64"),
    ("value_ptr", "u64"),
    ("value_len", "u64"),
    ("next", "u64"),
])

MAX_LOAD = 2


class BlobMap:
    """u64 -> bytes chained hash map with out-of-line values."""

    def __init__(self, mem, allocator, root):
        self._mem = mem
        self._alloc = allocator
        self.root = root
        self._hdr = _HEADER.view(mem, root)

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, mem, allocator, capacity=1024, seed=0x424C):
        """Allocate and initialize an empty map."""
        if capacity < 1 or capacity & (capacity - 1):
            raise ReproError("capacity must be a power of two")
        root = allocator.alloc(_HEADER.size)
        buckets = allocator.alloc(capacity * WORD_SIZE)
        mem.memset(buckets, capacity * WORD_SIZE, 0)
        hdr = _HEADER.view(mem, root)
        hdr.set("capacity", capacity)
        hdr.set("count", 0)
        hdr.set("buckets", buckets)
        hdr.set("seed", seed)
        hdr.set("magic", BLOB_MAGIC)
        return cls(mem, allocator, root)

    @classmethod
    def attach(cls, mem, allocator, root):
        """Bind to an existing map at ``root``."""
        instance = cls(mem, allocator, root)
        if instance._hdr.get("magic") != BLOB_MAGIC:
            raise ReproError("no blob map at offset 0x%x" % root)
        return instance

    # -- internals ------------------------------------------------------------

    def _bucket_addr(self, key, capacity=None, buckets=None):
        capacity = capacity if capacity is not None \
            else self._hdr.get("capacity")
        buckets = buckets if buckets is not None else self._hdr.get("buckets")
        index = _mix(key, self._hdr.get("seed")) & (capacity - 1)
        return buckets + index * WORD_SIZE

    def _find_node(self, key):
        """Return ``(prev_link_addr, node)``; node is 0 if absent."""
        bucket = self._bucket_addr(key)
        prev_link = bucket
        node = self._mem.read_u64(bucket)
        while node != NULL_ADDR:
            view = _NODE.view(self._mem, node)
            if view.get("key") == key:
                return prev_link, node
            prev_link = view.field_addr("next")
            node = view.get("next")
        return prev_link, NULL_ADDR

    def _store_value(self, view, value):
        blob = self._alloc.alloc(max(1, len(value)))
        if value:
            self._mem.write(blob, value)
        view.set("value_ptr", blob)
        view.set("value_len", len(value))

    def _free_value(self, view):
        old_ptr = view.get("value_ptr")
        old_len = view.get("value_len")
        if old_ptr != NULL_ADDR:
            self._alloc.free(old_ptr, max(1, old_len))

    # -- operations -----------------------------------------------------------

    def put(self, key, value):
        """Insert or replace; returns True on a fresh insert."""
        value = bytes(value)
        _prev, node = self._find_node(key)
        if node != NULL_ADDR:
            view = _NODE.view(self._mem, node)
            # New blob first, then swing the pointer: a torn update leaves
            # the old value reachable, never a mix.
            old_view_ptr = view.get("value_ptr")
            old_len = view.get("value_len")
            self._store_value(view, value)
            if old_view_ptr != NULL_ADDR:
                self._alloc.free(old_view_ptr, max(1, old_len))
            return False
        bucket = self._bucket_addr(key)
        head = self._mem.read_u64(bucket)
        node = self._alloc.alloc(_NODE.size)
        view = _NODE.view(self._mem, node)
        view.set("key", key)
        self._store_value(view, value)
        view.set("next", head)
        self._mem.write_u64(bucket, node)
        count = self._hdr.get("count") + 1
        self._hdr.set("count", count)
        if count > self._hdr.get("capacity") * MAX_LOAD:
            self._grow()
        return True

    def get(self, key, default=None):
        """Return the value bytes for ``key`` (or ``default``)."""
        _prev, node = self._find_node(key)
        if node == NULL_ADDR:
            return default
        view = _NODE.view(self._mem, node)
        length = view.get("value_len")
        if length == 0:
            return b""
        return self._mem.read(view.get("value_ptr"), length)

    def remove(self, key):
        """Delete ``key``; returns True if present."""
        prev_link, node = self._find_node(key)
        if node == NULL_ADDR:
            return False
        view = _NODE.view(self._mem, node)
        self._mem.write_u64(prev_link, view.get("next"))
        self._free_value(view)
        self._alloc.free(node, _NODE.size)
        self._hdr.set("count", self._hdr.get("count") - 1)
        return True

    def __contains__(self, key):
        return self.get(key) is not None

    def __len__(self):
        return self._hdr.get("count")

    def _grow(self):
        old_capacity = self._hdr.get("capacity")
        old_buckets = self._hdr.get("buckets")
        new_capacity = old_capacity * 2
        new_buckets = self._alloc.alloc(new_capacity * WORD_SIZE)
        self._mem.memset(new_buckets, new_capacity * WORD_SIZE, 0)
        for index in range(old_capacity):
            node = self._mem.read_u64(old_buckets + index * WORD_SIZE)
            while node != NULL_ADDR:
                view = _NODE.view(self._mem, node)
                next_node = view.get("next")
                target = self._bucket_addr(view.get("key"),
                                           capacity=new_capacity,
                                           buckets=new_buckets)
                view.set("next", self._mem.read_u64(target))
                self._mem.write_u64(target, node)
                node = next_node
        self._hdr.set("buckets", new_buckets)
        self._hdr.set("capacity", new_capacity)
        self._alloc.free(old_buckets, old_capacity * WORD_SIZE)

    # -- iteration ------------------------------------------------------------

    def items(self):
        """Yield ``(key, value_bytes)`` pairs."""
        capacity = self._hdr.get("capacity")
        buckets = self._hdr.get("buckets")
        for index in range(capacity):
            node = self._mem.read_u64(buckets + index * WORD_SIZE)
            while node != NULL_ADDR:
                view = _NODE.view(self._mem, node)
                length = view.get("value_len")
                value = (self._mem.read(view.get("value_ptr"), length)
                         if length else b"")
                yield view.get("key"), value
                node = view.get("next")

    def to_dict(self):
        """Materialize as a Python dict (verification helper)."""
        return dict(self.items())

    def __repr__(self):
        return "BlobMap(root=0x%x, len=%d)" % (self.root, len(self))
