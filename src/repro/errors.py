"""Exception hierarchy for the PAX reproduction.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch one base class. Subclasses are grouped by the
subsystem that raises them.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AddressError(ReproError):
    """An access targeted an unmapped, misaligned, or out-of-range address."""


class ProtectionError(ReproError):
    """A store hit a read-only page (used by the mprotect baseline)."""

    def __init__(self, addr, message=None):
        self.addr = addr
        super().__init__(message or "write to protected page at 0x%x" % addr)


class PoolError(ReproError):
    """A pool file is missing, corrupt, or version-incompatible."""


class LogError(ReproError):
    """The undo log is corrupt or an append exceeded its capacity."""


class AllocationError(ReproError):
    """The persistent allocator could not satisfy a request."""


class ProtocolError(ReproError):
    """A coherence/CXL message violated the protocol state machine."""


class CrashedError(ReproError):
    """An operation was attempted on a machine that has simulated a crash."""


class RecoveryError(ReproError):
    """Recovery could not restore a consistent snapshot."""


class ConfigError(ReproError):
    """A component was constructed with invalid configuration."""
