"""Consistency checkers: what must hold after any crash + recovery.

For snapshot schemes (PAX, mprotect) the contract is *exact*: the
recovered state equals the last persisted snapshot — not merely "some
consistent state". :class:`SnapshotTracker` records the expected dict at
every persist and verifies it after recovery. For per-op-durable schemes
(PMDK, redo, compiler) the contract is prefix-atomicity: the recovered
state equals the state after some *prefix* of completed operations, with
no torn operation visible.
"""

from repro.errors import ReproError


class SnapshotTracker:
    """Tracks the expected contents of a key-value backend across persists."""

    def __init__(self):
        self.pending = {}            # mutations since the last persist
        self.snapshot = {}           # state as of the last persist
        self.history = [{}]          # every persisted snapshot, in order
        self._tombstone = object()

    # -- mirroring the workload ------------------------------------------------

    def put(self, key, value):
        """Mirror a put()."""
        self.pending[key] = value

    def remove(self, key):
        """Mirror a remove()."""
        self.pending[key] = self._tombstone

    def persist(self):
        """Mirror a persist(): pending mutations become the snapshot."""
        for key, value in self.pending.items():
            if value is self._tombstone:
                self.snapshot.pop(key, None)
            else:
                self.snapshot[key] = value
        self.pending.clear()
        self.history.append(dict(self.snapshot))

    # -- verdicts ------------------------------------------------------------------

    def check_snapshot(self, recovered):
        """Snapshot contract: recovered == the last persisted state."""
        if recovered != self.snapshot:
            raise ReproError(
                "recovered state diverges from the last snapshot: "
                "%d recovered pairs vs %d expected; e.g. %r"
                % (len(recovered), len(self.snapshot),
                   _first_difference(recovered, self.snapshot)))
        return True

    def current_state(self):
        """Snapshot plus pending (what a non-crashed reader should see)."""
        state = dict(self.snapshot)
        for key, value in self.pending.items():
            if value is self._tombstone:
                state.pop(key, None)
            else:
                state[key] = value
        return state


def _first_difference(got, want):
    for key in set(got) | set(want):
        if got.get(key) != want.get(key):
            return (key, got.get(key), want.get(key))
    return None


def check_prefix_atomic(recovered, operations, base_state=None):
    """Per-op durability contract: recovered == state after some op prefix.

    ``operations`` is the ordered list of ``(kind, key, value)`` mutations
    issued after ``base_state``. Returns the matching prefix length, or
    raises :class:`ReproError` if no prefix matches (a torn operation is
    visible).
    """
    state = dict(base_state or {})
    if recovered == state:
        return 0
    for index, (kind, key, value) in enumerate(operations):
        if kind == "put":
            state[key] = value
        elif kind == "remove":
            state.pop(key, None)
        else:
            raise ReproError("unknown mutation kind %r" % (kind,))
        if recovered == state:
            return index + 1
    raise ReproError(
        "recovered state matches no operation prefix (%d pairs recovered)"
        % len(recovered))


def verify_map_integrity(table):
    """Structural integrity of a hash map: iteration terminates, count
    matches, and every key found by iteration is found by get()."""
    pairs = {}
    for key, value in table.items():
        if key in pairs:
            raise ReproError("duplicate key %d during iteration" % key)
        pairs[key] = value
    if len(pairs) != len(table):
        raise ReproError("count %d != iterated pairs %d"
                         % (len(table), len(pairs)))
    for key, value in pairs.items():
        if table.get(key) != value:
            raise ReproError("get(%d) disagrees with iteration" % key)
    return pairs
