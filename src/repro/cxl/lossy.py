"""A lossy wrapper around :class:`~repro.cxl.link.CxlLink`.

Real coherence interconnects are not lossless channels: CXL runs over a
physical layer with CRC-protected flits, and a corrupted or dropped flit
costs the sender a replay. :class:`LossyLink` models that at message
granularity: each send independently drops with ``drop_rate``; the sender
detects the loss after ``timeout_ns``, waits an exponentially growing
backoff (capped), and retransmits, up to ``max_retries`` attempts for one
message before giving up with :class:`~repro.errors.LinkError`.

Latency accounting: a message that is dropped ``k`` times costs

    k * timeout_ns + sum(jittered(min(base * 2^i, cap)) for i in range(k))

on top of the normal link latency of the successful attempt, and every
retransmitted attempt re-charges the underlying link (hop latency and
bandwidth-queue occupancy — retries consume real wire time). With
``spec.jitter`` > 0 each backoff is shortened by a deterministic random
fraction of itself (up to ``jitter``), drawn from the link's seeded RNG —
the classic thundering-herd de-synchronizer, still bit-for-bit replayable.

Stats (visible in the wrapper's StatGroup, and in any
:class:`~repro.obs.metrics.MetricsRegistry` that registers the machine):
``drops``, ``retries``, ``retransmits``, ``delays``, ``backoff_ns``,
``timeout_ns``, ``messages``.
"""

from repro.errors import LinkError
from repro.sim.rng import DeterministicRng
from repro.util.stats import StatGroup


class LossyLink:
    """Drop/delay decorator over a CxlLink; same send interface."""

    def __init__(self, inner, spec, rng=None):
        self.inner = inner
        self.spec = spec.validate()
        self._rng = rng or DeterministicRng(spec.seed)
        self.stats = StatGroup(inner.name + ".lossy")

    # -- CxlLink interface --------------------------------------------------

    @property
    def name(self):
        """The wrapped link's name."""
        return self.inner.name

    @property
    def one_way_ns(self):
        """The wrapped link's base one-way hop latency."""
        return self.inner.one_way_ns

    @property
    def tracer(self):
        """The wrapped link's tracer (spans fire per attempt)."""
        return self.inner.tracer

    @tracer.setter
    def tracer(self, value):
        self.inner.tracer = value

    def send_h2d(self, message):
        """Host-to-device hop with loss/retransmit; returns latency_ns."""
        return self._send(self.inner.send_h2d, message, "h2d")

    def send_d2h(self, message):
        """Device-to-host hop with loss/retransmit; returns latency_ns."""
        return self._send(self.inner.send_d2h, message, "d2h")

    def round_trip(self, request, response):
        """Latency of a request/response pair."""
        return self.send_h2d(request) + self.send_d2h(response)

    def set_spec(self, spec):
        """Swap the loss behaviour mid-run (chaos link storms).

        The replacement is validated; the link's RNG is deliberately
        *kept* (the new spec's ``seed`` is ignored) so that entering and
        leaving a storm continues one deterministic drop stream instead
        of replaying the old one. Returns the previous spec so a storm
        controller can restore it when the window closes.
        """
        previous = self.spec
        self.spec = spec.validate()
        self.stats.counter("spec_swaps").add(1)
        return previous

    # -- loss machinery ------------------------------------------------------

    def _send(self, sender, message, direction):
        self.stats.counter("messages").add(1)
        penalty_ns = 0.0
        attempt = 0
        while True:
            if self._rng.random() >= self.spec.drop_rate:
                latency = sender(message)
                if self.spec.delay_rate \
                        and self._rng.random() < self.spec.delay_rate:
                    latency += self.spec.delay_ns
                    self.stats.counter("delays").add(1)
                if attempt:
                    self.stats.counter("retries").add(attempt)
                return penalty_ns + latency
            attempt += 1
            self.stats.counter("drops").add(1)
            if attempt > self.spec.max_retries:
                raise LinkError(
                    "%s.%s: message dropped %d consecutive times; "
                    "retransmit budget exhausted"
                    % (self.name, direction, attempt))
            # The dropped attempt still occupied the wire.
            penalty_ns += sender(message)
            backoff = min(self.spec.backoff_base_ns * (2 ** (attempt - 1)),
                          self.spec.backoff_cap_ns)
            if self.spec.jitter:
                # De-synchronize retransmit schedules: shave a random
                # fraction (up to `jitter`) off the exponential step.
                backoff -= backoff * self.spec.jitter * self._rng.random()
            penalty_ns += self.spec.timeout_ns + backoff
            self.stats.counter("retransmits").add(1)
            self.stats.counter("timeout_ns").add(int(self.spec.timeout_ns))
            self.stats.counter("backoff_ns").add(int(backoff))

    def __repr__(self):
        return "LossyLink(%s, drop=%.4f, retries<=%d)" % (
            self.name, self.spec.drop_rate, self.spec.max_retries)
