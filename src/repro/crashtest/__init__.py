"""Crash injection and post-recovery consistency checking."""

from repro.crashtest.checker import (
    SnapshotTracker,
    check_prefix_atomic,
    verify_map_integrity,
)
from repro.crashtest.injector import CrashInjector, CrashSignal, count_stores

__all__ = [
    "CrashInjector",
    "CrashSignal",
    "SnapshotTracker",
    "check_prefix_atomic",
    "count_stores",
    "verify_map_integrity",
]
