"""abl-epoch: group-commit (epoch length) sweep.

Paper §3.2: persist() "works as a form of group commit"; calling it more
often bounds undo-log growth but pays the snoop+drain cost more often.
Sweeps persist-every-N and reports throughput, persist latency, and log
high-water mark.
"""

from benchmarks.conftest import bench_backend
from repro.analysis.report import Table
from repro.workloads.keys import KeySequence

OPS = 3000
RECORDS = 8000
GROUPS = (1, 8, 64, 512)


def run_group(group_size):
    backend = bench_backend("pax")
    load = KeySequence(RECORDS, "sequential", seed=1)
    for index in range(RECORDS):
        backend.put(load.next(), index)
    backend.persist()
    keys = KeySequence(RECORDS, "uniform", seed=2)
    start = backend.now_ns
    max_log = 0
    persist_ns = []
    for index in range(OPS):
        backend.put(keys.next(), index)
        max_log = max(max_log, backend.pool.undo_log_entries
                      + backend.machine.device.undo.pending_count)
        if (index + 1) % group_size == 0:
            persist_ns.append(backend.persist())
    if OPS % group_size:
        persist_ns.append(backend.persist())
    elapsed = backend.now_ns - start
    return {
        "ns_per_op": elapsed / OPS,
        "mean_persist_ns": sum(persist_ns) / len(persist_ns),
        "max_log_entries": max_log,
        "persists": len(persist_ns),
    }


def run():
    return {group: run_group(group) for group in GROUPS}


def test_epoch_length_sweep(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("abl-epoch: persist() every N ops",
                  ["group size", "ns/op", "mean persist (ns)",
                   "max log entries"])
    for group in GROUPS:
        row = results[group]
        table.add_row(group, row["ns_per_op"], row["mean_persist_ns"],
                      row["max_log_entries"])
    table.show()
    # Larger groups amortize persist cost into lower per-op time...
    assert results[512]["ns_per_op"] < results[1]["ns_per_op"]
    # ...at the price of more outstanding undo state.
    assert results[512]["max_log_entries"] > results[1]["max_log_entries"]
    # Per-persist cost grows with epoch size (more lines to snoop+flush).
    assert results[512]["mean_persist_ns"] > results[1]["mean_persist_ns"]
