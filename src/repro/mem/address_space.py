"""The system physical address map.

An :class:`AddressSpace` maps non-overlapping physical ranges to
:class:`~repro.mem.physical.MemoryDevice` instances — the same job a
system bus / system address decoder does in hardware. Accesses are routed
to the owning device; accesses that span a device boundary are rejected
(real interconnects split them, but nothing in this simulator legitimately
does that, so it is always a bug worth surfacing).

Address 0 is never mapped: every mapping must start at or above
:data:`~repro.util.constants.PAGE_SIZE`, preserving 0 as the NULL address
for persistent structures.
"""

import bisect

from repro.errors import AddressError, ConfigError
from repro.util.constants import PAGE_SIZE


class Mapping:
    """One entry in the address map: ``[base, base+size)`` -> device."""

    __slots__ = ("base", "size", "device")

    def __init__(self, base, size, device):
        self.base = base
        self.size = size
        self.device = device

    @property
    def end(self):
        """One past the last mapped address."""
        return self.base + self.size

    def contains(self, addr, length=1):
        """True if ``[addr, addr+length)`` lies wholly inside this mapping."""
        return self.base <= addr and addr + length <= self.end

    def __repr__(self):
        return "Mapping(0x%x..0x%x -> %s)" % (self.base, self.end, self.device.name)


class AddressSpace:
    """Routes physical addresses to devices."""

    def __init__(self, name="system"):
        self.name = name
        self._mappings = []      # sorted by base
        self._bases = []         # parallel list of bases for bisect

    def map_device(self, base, device):
        """Map ``device`` at physical ``base``; returns the :class:`Mapping`."""
        if base < PAGE_SIZE:
            raise ConfigError("mappings must start at or above 0x%x" % PAGE_SIZE)
        mapping = Mapping(base, device.size, device)
        index = bisect.bisect_left(self._bases, base)
        before = self._mappings[index - 1] if index > 0 else None
        after = self._mappings[index] if index < len(self._mappings) else None
        if before is not None and before.end > base:
            raise ConfigError("mapping at 0x%x overlaps %r" % (base, before))
        if after is not None and mapping.end > after.base:
            raise ConfigError("mapping at 0x%x overlaps %r" % (base, after))
        self._mappings.insert(index, mapping)
        self._bases.insert(index, base)
        return mapping

    def resolve(self, addr, length=1):
        """Return ``(mapping, device_offset)`` for ``[addr, addr+length)``."""
        if length <= 0:
            raise AddressError("resolve needs a positive length")
        index = bisect.bisect_right(self._bases, addr) - 1
        if index < 0:
            raise AddressError("unmapped address 0x%x" % addr)
        mapping = self._mappings[index]
        if not mapping.contains(addr, length):
            raise AddressError(
                "access [0x%x, +%d) not wholly inside %r" % (addr, length, mapping))
        return mapping, addr - mapping.base

    def device_at(self, addr):
        """Return the device owning ``addr``."""
        mapping, _off = self.resolve(addr)
        return mapping.device

    def read(self, addr, length):
        """Read ``length`` bytes at physical ``addr``."""
        mapping, offset = self.resolve(addr, length)
        return mapping.device.read(offset, length)

    def write(self, addr, data):
        """Write ``data`` at physical ``addr``."""
        data = bytes(data)
        mapping, offset = self.resolve(addr, max(1, len(data)))
        mapping.device.write(offset, data)

    def mappings(self):
        """Return the mappings in address order."""
        return list(self._mappings)

    def on_crash(self):
        """Propagate crash semantics to every mapped device."""
        for mapping in self._mappings:
            mapping.device.on_crash()

    def __repr__(self):
        return "AddressSpace(%s, %d mappings)" % (self.name, len(self._mappings))
