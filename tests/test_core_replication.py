"""Epoch replication to remote memory (§6 fault tolerance)."""

import pytest

from repro.core.replication import NetworkLink, ReplicaTarget, Replicator
from repro.errors import ConfigError, ProtocolError
from repro.pm.device import PmDevice
from repro.pm.pool import Pool
from repro.structures import HashMap
from tests.conftest import make_pax_pool, small_cache_kwargs

POOL_SIZE = 4 * 1024 * 1024
LOG_SIZE = 256 * 1024


def replicated_pool(mode="sync", rtt_ns=2000.0):
    pool = make_pax_pool()
    replica_device = PmDevice("replica", POOL_SIZE)
    replica = ReplicaTarget(Pool.format(replica_device, log_size=LOG_SIZE))
    link = NetworkLink(pool.machine.clock, rtt_ns=rtt_ns)
    replicator = Replicator(pool.machine, replica, link=link, mode=mode)
    return pool, replica, replicator


class TestSyncReplication:
    def test_replica_tracks_every_epoch(self):
        pool, replica, replicator = replicated_pool("sync")
        table = pool.persistent(HashMap, capacity=64)
        for batch in range(3):
            for key in range(batch * 10, batch * 10 + 10):
                table.put(key, key)
            pool.persist()
            assert replica.replicated_epoch == pool.committed_epoch
            assert replicator.lag_epochs == 0

    def test_failover_holds_last_snapshot(self):
        pool, replica, replicator = replicated_pool("sync")
        table = pool.persistent(HashMap, capacity=64)
        for key in range(25):
            table.put(key, key * 3)
        pool.persist()
        expected = dict(table.to_dict())
        # Primary dies; unpersisted tail is lost everywhere.
        table.put(999, 999)
        pool.crash()
        standby = replicator.failover(pool_size=POOL_SIZE,
                                      log_size=LOG_SIZE,
                                      **small_cache_kwargs())
        recovered = standby.reattach_root(HashMap)
        assert recovered.to_dict() == expected

    def test_sync_persist_pays_network(self):
        plain = make_pax_pool()
        table = plain.persistent(HashMap, capacity=64)
        table.put(1, 1)
        plain_cost = plain.persist()
        pool, _replica, _replicator = replicated_pool("sync", rtt_ns=5000.0)
        table = pool.persistent(HashMap, capacity=64)
        table.put(1, 1)
        replicated_cost = pool.persist()
        assert replicated_cost > plain_cost + 4000

    def test_layout_mismatch_rejected(self):
        pool = make_pax_pool()
        other = PmDevice("replica", POOL_SIZE)
        replica = ReplicaTarget(Pool.format(other, log_size=LOG_SIZE * 2))
        with pytest.raises(ConfigError):
            Replicator(pool.machine, replica)

    def test_bad_mode_rejected(self):
        pool = make_pax_pool()
        replica = ReplicaTarget(
            Pool.format(PmDevice("r", POOL_SIZE), log_size=LOG_SIZE))
        with pytest.raises(ConfigError):
            Replicator(pool.machine, replica, mode="eventual")


class TestAsyncReplication:
    def test_lag_then_catch_up(self):
        pool, replica, replicator = replicated_pool("async")
        table = pool.persistent(HashMap, capacity=64)
        for batch in range(3):
            table.put(batch, batch)
            pool.persist()
        # Epochs queue; nothing guaranteed remote yet.
        assert replicator.lag_epochs >= 0
        pool.machine.clock.advance(50_000_000)    # plenty of wire time
        assert replicator.lag_epochs == 0
        assert replica.replicated_epoch == pool.committed_epoch

    def test_flush_is_a_barrier(self):
        pool, replica, replicator = replicated_pool("async")
        table = pool.persistent(HashMap, capacity=64)
        for batch in range(4):
            table.put(batch, batch)
            pool.persist()
        replicator.flush()
        assert replicator.lag_epochs == 0

    def test_failover_after_lag_loses_only_tail_epochs(self):
        pool, replica, replicator = replicated_pool("async",
                                                    rtt_ns=10_000_000.0)
        table = pool.persistent(HashMap, capacity=64)
        table.put(1, 1)
        pool.persist()
        replicator.flush()                      # epoch with key 1 is remote
        table.put(2, 2)
        pool.persist()                          # queued, slow wire
        pool.crash()
        standby = replicator.failover(pool_size=POOL_SIZE,
                                      log_size=LOG_SIZE,
                                      **small_cache_kwargs())
        recovered = standby.reattach_root(HashMap)
        state = recovered.to_dict()
        # A whole-epoch boundary: key 1 present, key 2 all-or-nothing.
        assert state.get(1) == 1
        assert state in ({1: 1}, {1: 1, 2: 2})


class TestReplicaTarget:
    def test_epoch_gap_rejected(self):
        replica = ReplicaTarget(
            Pool.format(PmDevice("r", POOL_SIZE), log_size=LOG_SIZE))
        with pytest.raises(ProtocolError):
            replica.apply(5, {})

    def test_in_order_applies(self):
        pool = Pool.format(PmDevice("r", POOL_SIZE), log_size=LOG_SIZE)
        replica = ReplicaTarget(pool)
        addr = pool.data_base
        replica.apply(1, {addr: b"\x01" * 64})
        replica.apply(2, {addr: b"\x02" * 64})
        assert pool.device.read(addr, 1) == b"\x02"
        assert replica.replicated_epoch == 2
