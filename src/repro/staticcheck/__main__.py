"""``python -m repro.staticcheck`` entry point."""

import sys

from repro.staticcheck import main

if __name__ == "__main__":
    sys.exit(main())
