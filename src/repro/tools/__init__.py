"""Operator tooling: offline inspection of pool files."""

from repro.tools.inspect import format_report, inspect_pool

__all__ = ["format_report", "inspect_pool"]
