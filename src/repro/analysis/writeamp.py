"""Write-amplification accounting (paper §1 and §5.1).

The paper's argument against page-fault schemes: they log at 4 KiB page
granularity, so a workload mutating scattered 8 B fields amplifies log
traffic by orders of magnitude, while PAX logs 64 B lines (96 B entries).
This module measures, for any backend, the ratio of bytes that reached
the persistent medium (structure write-back + log) to the bytes the
application logically wrote.
"""

from dataclasses import dataclass

from repro.workloads.keys import KeySequence

#: Logical bytes one put() writes: an 8 B key and an 8 B value.
LOGICAL_BYTES_PER_PUT = 16


@dataclass
class WriteAmpReport:
    """Measured amplification for one backend/workload pair."""

    name: str
    ops: int
    logical_bytes: int
    media_write_bytes: int
    log_bytes: int

    @property
    def total_persistent_bytes(self):
        """Everything that hit the medium because of the workload."""
        return self.media_write_bytes + self.log_bytes

    @property
    def amplification(self):
        """Persistent bytes per logical byte."""
        if self.logical_bytes == 0:
            return 0.0
        return self.total_persistent_bytes / self.logical_bytes

    @property
    def log_amplification(self):
        """Log bytes alone per logical byte — the §5.1 comparison."""
        if self.logical_bytes == 0:
            return 0.0
        return self.log_bytes / self.logical_bytes


def _log_bytes(backend):
    return getattr(backend, "wal_bytes", 0) or getattr(backend, "log_bytes", 0)


def _media_write_bytes(backend):
    machine = backend.machine
    device = machine.pm if hasattr(machine, "pm") else machine.memory
    return device.stats.get("bytes_written")


def measure_write_amp(backend, op_count=2000, record_count=2000,
                      distribution="uniform", group_size=64, seed=42):
    """Run a put()-only workload and account every persistent byte.

    ``distribution`` controls spatial locality: ``sequential`` keys give
    page-based schemes their best case (many mutations per logged page),
    ``uniform`` their worst (the paper's headline case).
    """
    load_keys = KeySequence(record_count, "sequential", seed=seed)
    for index in range(record_count):
        backend.put(load_keys.next(), index)
    backend.persist()
    writes0 = _media_write_bytes(backend)
    log0 = _log_bytes(backend)
    run_keys = KeySequence(record_count, distribution, seed=seed + 1)
    for index in range(op_count):
        backend.put(run_keys.next(), index)
        if (index + 1) % group_size == 0:
            backend.persist()
    backend.persist()
    return WriteAmpReport(
        name=backend.name,
        ops=op_count,
        logical_bytes=op_count * LOGICAL_BYTES_PER_PUT,
        media_write_bytes=_media_write_bytes(backend) - writes0,
        log_bytes=_log_bytes(backend) - log0)
