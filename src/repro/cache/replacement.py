"""Replacement policies for set-associative caches.

Each cache *set* owns one policy instance. The policy sees accesses,
insertions, and removals by line address and nominates a victim when the
set is full. LRU is the default everywhere; FIFO and Random exist for the
ablation benchmarks and as sanity baselines.
"""

from collections import OrderedDict, deque

from repro.errors import ConfigError
from repro.sim.rng import DeterministicRng


class ReplacementPolicy:
    """Interface implemented by every policy."""

    def on_access(self, addr):
        """A lookup hit ``addr``."""

    def on_insert(self, addr):
        """``addr`` was inserted into the set."""

    def on_remove(self, addr):
        """``addr`` left the set (eviction or invalidation)."""

    def victim(self):
        """Return the address the set should evict next."""
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """Least recently used."""

    def __init__(self):
        self._order = OrderedDict()

    def on_access(self, addr):
        # Hit path: the address is almost always present, so try/except
        # beats a membership probe before every move_to_end.
        try:
            self._order.move_to_end(addr)
        except KeyError:
            pass

    def on_insert(self, addr):
        self._order[addr] = True
        self._order.move_to_end(addr)

    def on_remove(self, addr):
        self._order.pop(addr, None)

    def victim(self):
        if not self._order:
            raise ConfigError("victim requested from an empty set")
        return next(iter(self._order))


class FifoPolicy(ReplacementPolicy):
    """First in, first out; accesses do not refresh position."""

    def __init__(self):
        self._queue = deque()

    def on_insert(self, addr):
        self._queue.append(addr)

    def on_remove(self, addr):
        try:
            self._queue.remove(addr)
        except ValueError:
            pass

    def victim(self):
        if not self._queue:
            raise ConfigError("victim requested from an empty set")
        return self._queue[0]


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim (deterministic via the shared RNG)."""

    def __init__(self, rng=None):
        self._members = []
        self._rng = rng or DeterministicRng(7)

    def on_insert(self, addr):
        self._members.append(addr)

    def on_remove(self, addr):
        try:
            self._members.remove(addr)
        except ValueError:
            pass

    def victim(self):
        if not self._members:
            raise ConfigError("victim requested from an empty set")
        return self._rng.choice(self._members)


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(name):
    """Factory: return a fresh policy instance by name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ConfigError("unknown replacement policy %r" % (name,)) from None
