"""Recovery procedure and epoch manager edge cases."""

import pytest

from repro.core.epochs import EpochManager
from repro.core.recovery import recover_pool
from repro.errors import PoolError, ProtocolError, RecoveryError
from repro.pm.device import PmDevice
from repro.pm.log import UndoLogRegion
from repro.pm.pool import Pool


def build():
    device = PmDevice("pm", 1 << 20)
    pool = Pool.format(device, log_size=96 * 128)
    region = UndoLogRegion(device, pool.log_base, pool.log_size)
    return pool, region


class TestRecovery:
    def test_clean_pool_noop(self):
        pool, _region = build()
        report = recover_pool(pool)
        assert not report.was_dirty
        assert report.records_rolled_back == 0

    def test_rollback_restores_old_values(self):
        pool, region = build()
        addr = pool.data_base
        pool.device.write(addr, b"NEW" + b"\x00" * 61)
        region.append(1, addr, b"OLD" + b"\x00" * 61)   # epoch 1 uncommitted
        report = recover_pool(pool)
        assert report.records_rolled_back == 1
        assert pool.device.read(addr, 3) == b"OLD"

    def test_rollback_applies_oldest_last(self):
        # Two records for the same line (dedup off): the first (epoch-
        # start) value must win.
        pool, region = build()
        addr = pool.data_base
        region.append(1, addr, b"FIRST" + b"\x00" * 59)
        region.append(1, addr, b"SECOND" + b"\x00" * 58)
        recover_pool(pool)
        assert pool.device.read(addr, 5) == b"FIRST"

    def test_stale_committed_records_ignored(self):
        # Crash between the epoch-cell write and the log rewind.
        pool, region = build()
        addr = pool.data_base
        pool.device.write(addr, b"KEEP" + b"\x00" * 60)
        region.append(1, addr, b"STALE" + b"\x00" * 59)
        pool.commit_epoch(1)
        report = recover_pool(pool)
        assert report.records_rolled_back == 0
        assert pool.device.read(addr, 4) == b"KEEP"

    def test_log_rewound_after_recovery(self):
        pool, region = build()
        region.append(1, pool.data_base, b"x" * 64)
        recover_pool(pool)
        fresh = UndoLogRegion(pool.device, pool.log_base, pool.log_size)
        assert list(fresh.scan()) == []

    def test_recovery_idempotent(self):
        pool, region = build()
        addr = pool.data_base
        pool.device.write(addr, b"NEW" + b"\x00" * 61)
        region.append(1, addr, b"OLD" + b"\x00" * 61)
        recover_pool(pool)
        report = recover_pool(pool)
        assert report.records_rolled_back == 0
        assert pool.device.read(addr, 3) == b"OLD"

    def test_multi_epoch_rollback_newest_first(self):
        # Pipelined persists can leave several uncommitted epochs in the
        # log; all roll back, and the oldest record for a line wins.
        pool, region = build()
        addr = pool.data_base
        pool.device.write(addr, b"E3" + b"\x00" * 62)
        region.append(1, addr, b"E0" + b"\x00" * 62)   # epoch 1's pre-image
        region.append(2, addr, b"E1" + b"\x00" * 62)   # epoch 2's pre-image
        region.append(3, addr, b"E2" + b"\x00" * 62)
        report = recover_pool(pool)
        assert report.records_rolled_back == 3
        assert pool.device.read(addr, 2) == b"E0"

    def test_out_of_order_epochs_rejected(self):
        pool, region = build()
        region.append(2, pool.data_base, b"x" * 64)
        region.append(1, pool.data_base + 64, b"y" * 64)
        with pytest.raises(RecoveryError):
            recover_pool(pool)

    def test_out_of_range_target_rejected(self):
        pool, region = build()
        region.append(1, 64, b"x" * 64)   # inside the superblock!
        with pytest.raises(RecoveryError):
            recover_pool(pool)

    def test_short_record_padded_to_line(self):
        pool, region = build()
        addr = pool.data_base
        pool.device.write(addr, b"\xff" * 64)
        region.append(1, addr, b"AB")
        recover_pool(pool)
        assert pool.device.read(addr, 64) == b"AB" + b"\x00" * 62


class TestEpochManager:
    def test_fresh_pool_opens_epoch_one(self):
        pool, region = build()
        manager = EpochManager(pool, region)
        assert manager.current_epoch == 1
        assert manager.committed_epoch == 0

    def test_commit_sequence(self):
        pool, region = build()
        manager = EpochManager(pool, region)
        manager.commit(lines_in_epoch=3)
        assert pool.committed_epoch == 1
        assert manager.current_epoch == 2
        manager.commit(lines_in_epoch=0)
        assert pool.committed_epoch == 2

    def test_commit_rewinds_log(self):
        pool, region = build()
        manager = EpochManager(pool, region)
        region.append(1, pool.data_base, b"x" * 64)
        manager.commit(lines_in_epoch=1)
        assert region.used_entries == 0

    def test_out_of_sync_detected(self):
        pool, region = build()
        manager = EpochManager(pool, region)
        pool.commit_epoch(1)    # committed behind the manager's back
        with pytest.raises(ProtocolError):
            manager.commit(lines_in_epoch=0)

    def test_resync_after_recovery(self):
        pool, region = build()
        manager = EpochManager(pool, region)
        manager.commit(0)
        rebuilt = EpochManager(pool, region)
        assert rebuilt.current_epoch == 2
        rebuilt.resync_after_recovery()
        assert rebuilt.current_epoch == 2
