#!/usr/bin/env python3
"""Crash consistency demo: a bank ledger that survives power failures.

A transfer between accounts is a multi-store operation (debit one key,
credit another): exactly the kind of operation a crash can tear in half.
This demo runs transfers, injects a power failure *mid-transfer*, and
shows that recovery lands on the last persisted snapshot with the books
balanced — then contrasts a PM-direct (non-crash-consistent) run where
the invariant is lost.
"""

from repro import HashMap, map_pool
from repro.baselines import make_backend
from repro.crashtest import CrashInjector

ACCOUNTS = 8
OPENING_BALANCE = 1000


def total(table):
    return sum(table.get(account, 0) for account in range(ACCOUNTS))


def transfer(table, src, dst, amount):
    table.put(src, table.get(src) - amount)
    table.put(dst, table.get(dst) + amount)


def run_pax():
    print("=== PAX: snapshots keep the books balanced ===")
    pool = map_pool(pool_size=8 * 1024 * 1024, log_size=512 * 1024)
    ledger = pool.persistent(HashMap, capacity=64)
    for account in range(ACCOUNTS):
        ledger.put(account, OPENING_BALANCE)
    pool.persist()
    print("opening total: %d" % total(ledger))

    # A batch of transfers, committed as one snapshot.
    for step in range(10):
        transfer(ledger, step % ACCOUNTS, (step + 3) % ACCOUNTS, 50)
    pool.persist()
    committed_total = total(ledger)

    # Power fails half-way through the *next* transfer.
    injector = CrashInjector(pool.machine)
    injector.arm(1)     # crash after the debit, before the credit
    crashed = injector.run(lambda: transfer(ledger, 0, 1, 500))
    assert crashed
    print("power failed mid-transfer (debit applied, credit lost)")

    report = pool.restart()
    ledger = pool.reattach_root(HashMap)
    print("recovery rolled back %d undo records" % report.records_rolled_back)
    print("recovered total: %d (invariant %s)"
          % (total(ledger),
             "HOLDS" if total(ledger) == committed_total else "BROKEN"))
    assert total(ledger) == ACCOUNTS * OPENING_BALANCE


def run_pm_direct():
    print()
    print("=== PM direct (eADR, no crash consistency): books can tear ===")
    backend = make_backend("pm_direct", heap_size=8 * 1024 * 1024,
                           capacity=64, eadr=True)
    for account in range(ACCOUNTS):
        backend.put(account, OPENING_BALANCE)

    injector = CrashInjector(backend.machine)
    injector.arm(1)
    crashed = injector.run(
        lambda: transfer(backend._map, 0, 1, 500))
    assert crashed
    print("power failed mid-transfer")
    if backend.restart():
        recovered = sum(backend.get(a, 0) for a in range(ACCOUNTS))
        print("recovered total: %d (expected %d) -> %s"
              % (recovered, ACCOUNTS * OPENING_BALANCE,
                 "TORN" if recovered != ACCOUNTS * OPENING_BALANCE
                 else "lucky"))
    else:
        print("pool would not even reopen: structure torn")


if __name__ == "__main__":
    run_pax()
    run_pm_direct()
