"""The cache-coherent interconnect between host and device.

Charges a fixed one-way hop latency per message plus a fluid-model
bandwidth queueing delay (:class:`~repro.sim.bandwidth.BandwidthLimiter`).
Two presets mirror the paper's two targets: ``cxl`` (the forthcoming
CXL 2.0 FPGA) and ``enzian`` (the ThunderX-1/ECI prototype whose hop
latency the paper estimates costs ~2x the CXL version end to end).
"""

from repro.errors import ConfigError
from repro.sim.bandwidth import BandwidthLimiter
from repro.util.stats import StatGroup


class CxlLink:
    """A bidirectional host<->device link with latency and bandwidth."""

    def __init__(self, name, clock, one_way_ns, bytes_per_second):
        if one_way_ns < 0:
            raise ConfigError("link latency cannot be negative")
        self.name = name
        self.one_way_ns = one_way_ns
        self._clock = clock
        self._h2d = BandwidthLimiter(name + ".h2d", clock, bytes_per_second)
        self._d2h = BandwidthLimiter(name + ".d2h", clock, bytes_per_second)
        #: Optional :class:`~repro.sanitizer.base.Tracer`: each hop emits
        #: a "link" span (queueing delay included) when one is attached.
        self.tracer = None
        self.stats = StatGroup(name)
        # Per-message counters bound once (hot-path-stat-lookup rule).
        self._c_h2d_messages = self.stats.counter("h2d_messages")
        self._c_h2d_bytes = self.stats.counter("h2d_bytes")
        self._c_d2h_messages = self.stats.counter("d2h_messages")
        self._c_d2h_bytes = self.stats.counter("d2h_bytes")

    @classmethod
    def from_model(cls, name, clock, latency_model):
        """Build a link from a named preset in the latency model."""
        one_way = latency_model.link_one_way_ns(name)
        bandwidth = {
            "cxl": latency_model.bandwidth.cxl_bps,
            "enzian": latency_model.bandwidth.enzian_bps,
            "smp": latency_model.bandwidth.dram_bps,
        }.get(name)
        if bandwidth is None:
            raise ConfigError("no bandwidth preset for link %r" % (name,))
        return cls(name, clock, one_way, bandwidth)

    def send_h2d(self, message):
        """Host-to-device hop; returns latency_ns."""
        wire_bytes = message.wire_bytes
        self._c_h2d_messages.value += 1
        self._c_h2d_bytes.value += wire_bytes
        latency = self.one_way_ns + self._h2d.submit(wire_bytes)
        tracer = self.tracer
        if tracer is not None:
            tracer.on_span("link", "h2d", self._clock.now_ns, latency,
                           {"type": type(message).__name__,
                            "bytes": wire_bytes})
        return latency

    def send_d2h(self, message):
        """Device-to-host hop; returns latency_ns."""
        wire_bytes = message.wire_bytes
        self._c_d2h_messages.value += 1
        self._c_d2h_bytes.value += wire_bytes
        latency = self.one_way_ns + self._d2h.submit(wire_bytes)
        tracer = self.tracer
        if tracer is not None:
            tracer.on_span("link", "d2h", self._clock.now_ns, latency,
                           {"type": type(message).__name__,
                            "bytes": wire_bytes})
        return latency

    def round_trip(self, request, response):
        """Latency of a request/response pair."""
        return self.send_h2d(request) + self.send_d2h(response)

    def __repr__(self):
        return "CxlLink(%s, %.0f ns one-way)" % (self.name, self.one_way_ns)
