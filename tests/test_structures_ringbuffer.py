"""The ring buffer: FIFO semantics, wrap-around, crash behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.libpax.allocator import PmAllocator
from repro.mem.accessor import OffsetAccessor, RawAccessor
from repro.mem.address_space import AddressSpace
from repro.mem.physical import MemoryDevice
from repro.structures.ringbuffer import RingBuffer
from tests.conftest import make_pax_pool


def fresh():
    space = AddressSpace()
    space.map_device(4096, MemoryDevice("m", 1 << 20))
    mem = OffsetAccessor(RawAccessor(space), 4096)
    return mem, PmAllocator.create(mem, 1 << 20)


class TestFifo:
    def test_enqueue_dequeue(self):
        mem, alloc = fresh()
        ring = RingBuffer.create(mem, alloc, capacity=4)
        ring.enqueue(1)
        ring.enqueue(2)
        assert ring.dequeue() == 1
        assert ring.dequeue() == 2

    def test_empty_raises(self):
        mem, alloc = fresh()
        ring = RingBuffer.create(mem, alloc, capacity=4)
        with pytest.raises(IndexError):
            ring.dequeue()
        with pytest.raises(IndexError):
            ring.peek()

    def test_full_raises(self):
        mem, alloc = fresh()
        ring = RingBuffer.create(mem, alloc, capacity=2)
        ring.enqueue(1)
        ring.enqueue(2)
        assert ring.is_full()
        with pytest.raises(IndexError):
            ring.enqueue(3)

    def test_wrap_around(self):
        mem, alloc = fresh()
        ring = RingBuffer.create(mem, alloc, capacity=3)
        for value in range(10):
            ring.enqueue(value)
            assert ring.dequeue() == value
        assert ring.is_empty()

    def test_peek(self):
        mem, alloc = fresh()
        ring = RingBuffer.create(mem, alloc, capacity=4)
        ring.enqueue(42)
        assert ring.peek() == 42
        assert len(ring) == 1

    def test_iteration_order(self):
        mem, alloc = fresh()
        ring = RingBuffer.create(mem, alloc, capacity=8)
        # Wrap a few times, then fill partially.
        for value in range(6):
            ring.enqueue(value)
        for _ in range(4):
            ring.dequeue()
        for value in range(100, 105):
            ring.enqueue(value)
        assert ring.to_list() == [4, 5, 100, 101, 102, 103, 104]

    def test_attach(self):
        mem, alloc = fresh()
        ring = RingBuffer.create(mem, alloc, capacity=4)
        ring.enqueue(5)
        attached = RingBuffer.attach(mem, alloc, ring.root)
        assert attached.dequeue() == 5

    def test_attach_garbage_rejected(self):
        mem, alloc = fresh()
        with pytest.raises(ReproError):
            RingBuffer.attach(mem, alloc, 4096)

    def test_zero_capacity_rejected(self):
        mem, alloc = fresh()
        with pytest.raises(ReproError):
            RingBuffer.create(mem, alloc, capacity=0)

    def test_invariant_checker(self):
        mem, alloc = fresh()
        ring = RingBuffer.create(mem, alloc, capacity=4)
        ring.enqueue(1)
        assert ring.check_invariants()
        ring._hdr.set("head", 5)      # corrupt
        with pytest.raises(ReproError):
            ring.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["enq", "deq"]),
                              st.integers(0, 2**64 - 1)), max_size=100))
    def test_matches_python_deque(self, ops):
        from collections import deque
        mem, alloc = fresh()
        ring = RingBuffer.create(mem, alloc, capacity=8)
        model = deque()
        for kind, value in ops:
            if kind == "enq" and len(model) < 8:
                ring.enqueue(value)
                model.append(value)
            elif kind == "deq" and model:
                assert ring.dequeue() == model.popleft()
        assert ring.to_list() == list(model)


class TestRingOnPax:
    def test_snapshot_and_rollback(self, pax_pool):
        ring = pax_pool.persistent(RingBuffer, capacity=16)
        for value in range(5):
            ring.enqueue(value)
        pax_pool.persist()
        ring.enqueue(99)
        ring.dequeue()
        pax_pool.crash()
        pax_pool.restart()
        recovered = pax_pool.reattach_root(RingBuffer)
        recovered.check_invariants()
        assert recovered.to_list() == [0, 1, 2, 3, 4]

    def test_producer_consumer_epochs(self, pax_pool):
        ring = pax_pool.persistent(RingBuffer, capacity=8)
        consumed = []
        for batch in range(5):
            for value in range(batch * 3, batch * 3 + 3):
                ring.enqueue(value)
            while len(ring) > 2:
                consumed.append(ring.dequeue())
            pax_pool.persist()
        pax_pool.crash()
        pax_pool.restart()
        recovered = pax_pool.reattach_root(RingBuffer)
        recovered.check_invariants()
        # Everything consumed + everything still queued = everything
        # produced, exactly once.
        assert sorted(consumed + recovered.to_list()) == list(range(15))
