"""Optional-numpy shim for the replay engine.

numpy is an *optional* extra (``pip install .[replay]``): trace decode and
the batched histogram settle use it when present, and fall back to the
stdlib ``array`` module otherwise. Everything downstream imports
``HAVE_NUMPY``/``np`` from here so the fallback decision lives in exactly
one place (and tests can monkeypatch it to exercise both paths).
"""

import sys
from array import array

try:  # pragma: no cover - exercised via both CI paths
    import numpy as np
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None
    HAVE_NUMPY = False

#: True on little-endian hosts; the on-disk format is always little-endian.
_LITTLE = sys.byteorder == "little"


def _from_array(typecode, buf):
    """Decode ``buf`` into a list of ints via the stdlib array module."""
    out = array(typecode)
    out.frombytes(bytes(buf))
    if not _LITTLE:
        out.byteswap()
    return out.tolist()


def decode_column(typecode, buf, use_numpy=None):
    """Decode a little-endian column into a list of Python ints.

    ``typecode`` is an ``array`` typecode ('B', 'I', or 'Q'). The numpy
    path and the fallback produce identical lists; ``use_numpy`` overrides
    autodetection for tests.
    """
    if use_numpy is None:
        use_numpy = HAVE_NUMPY
    if use_numpy and HAVE_NUMPY:
        dtype = {"B": "<u1", "I": "<u4", "Q": "<u8"}[typecode]
        return np.frombuffer(bytes(buf), dtype=dtype).tolist()
    return _from_array(typecode, buf)


def encode_column(typecode, values):
    """Encode ints as a little-endian column (bytes)."""
    out = array(typecode, values)
    if not _LITTLE:
        out.byteswap()
    return out.tobytes()
