#!/usr/bin/env python3
"""Compare every crash-consistency scheme on YCSB-style workloads.

Runs the same zipfian trace against all seven backends — the identical
hash-map code bound to different persistence machinery — and prints
simulated throughput plus each scheme's overhead signature (fences taken,
log bytes written, page faults).
"""

from repro.analysis.report import Table
from repro.baselines import make_backend
from repro.workloads.trace import apply_trace, interleave_persists
from repro.workloads.ycsb import YcsbWorkload

BACKENDS = ("dram", "pm_direct", "pax", "pmdk", "redo", "compiler",
            "mprotect")
RECORDS = 2000
OPS = 1500


def run_backend(name, mix):
    kwargs = dict(heap_size=8 * 1024 * 1024, capacity=1024)
    if name == "pax":
        kwargs = dict(pool_size=8 * 1024 * 1024, log_size=1024 * 1024,
                      capacity=1024)
    backend = make_backend(name, **kwargs)
    workload = YcsbWorkload(mix=mix, record_count=RECORDS, op_count=OPS,
                            distribution="zipfian", seed=5)
    apply_trace(backend, workload.load_trace())
    backend.persist()
    start = backend.now_ns
    ops = apply_trace(backend,
                      interleave_persists(workload.run_trace(), 64))
    elapsed = backend.now_ns - start
    return {
        "mops": ops * 1e3 / elapsed,
        "fences": getattr(backend, "sfence_count", 0),
        "log_kib": (getattr(backend, "wal_bytes", 0)
                    or getattr(backend, "log_bytes", 0)) / 1024,
        "faults": getattr(backend, "fault_count", 0),
    }


def main():
    for mix in ("A", "C"):
        table = Table("YCSB-%s (zipfian, %d records, %d ops)"
                      % (mix, RECORDS, OPS),
                      ["backend", "Mops (sim)", "sfences", "log KiB",
                       "page faults"])
        for name in BACKENDS:
            row = run_backend(name, mix)
            table.add_row(name, row["mops"], row["fences"], row["log_kib"],
                          row["faults"])
        table.show()
    print()
    print("Reading the tables: DRAM is the volatile ceiling; PM direct is")
    print("fast but unsafe; PAX tracks PM-direct speed while logging in")
    print("the background; the WAL schemes pay fences per operation; the")
    print("page-fault scheme pays traps and page-sized log records.")


if __name__ == "__main__":
    main()
