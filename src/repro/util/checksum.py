"""Checksums used by on-media formats (pool superblock, undo-log entries).

We use CRC-32C (Castagnoli), the polynomial used by real storage stacks
(iSCSI, ext4, Btrfs), implemented with a precomputed table. Undo-log
entries and the pool superblock carry a CRC so that recovery can detect a
torn write at the durability boundary — exactly the failure a crash
simulator must get right.
"""

_CRC32C_POLY = 0x82F63B78


def _build_tables():
    # Slicing-by-8: table[0] is the classic byte-at-a-time table;
    # table[k][i] advances a byte through k additional zero bytes, so
    # eight table lookups consume eight input bytes per loop iteration.
    # The result is bit-identical to the byte-at-a-time computation.
    t0 = []
    for i in range(256):
        crc = i
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _CRC32C_POLY
            else:
                crc >>= 1
        t0.append(crc)
    tables = [t0]
    for _ in range(7):
        prev = tables[-1]
        tables.append([t0[c & 0xFF] ^ (c >> 8) for c in prev])
    return tables


_TABLES = _build_tables()
_TABLE = _TABLES[0]


def crc32c(data, crc=0):
    """Compute the CRC-32C of ``data`` (bytes-like), seeding with ``crc``.

    The seed lets callers checksum a record incrementally:

    >>> crc32c(b"world", crc=crc32c(b"hello ")) == crc32c(b"hello world")
    True
    """
    crc ^= 0xFFFFFFFF
    data = bytes(data)
    n = len(data)
    t0, t1, t2, t3, t4, t5, t6, t7 = _TABLES
    end = n & ~7
    for i in range(0, end, 8):
        low = crc ^ data[i] ^ (data[i + 1] << 8) \
            ^ (data[i + 2] << 16) ^ (data[i + 3] << 24)
        crc = (t7[low & 0xFF] ^ t6[(low >> 8) & 0xFF]
               ^ t5[(low >> 16) & 0xFF] ^ t4[low >> 24]
               ^ t3[data[i + 4]] ^ t2[data[i + 5]]
               ^ t1[data[i + 6]] ^ t0[data[i + 7]])
    for j in range(end, n):
        crc = t0[(crc ^ data[j]) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def verify(data, expected):
    """Return True if ``data`` checksums to ``expected``."""
    return crc32c(data) == expected
