"""The forward dataflow solver: must- vs may-analysis semantics at
joins and loops, TOP for unreachable code, and the divergence guard."""

import ast
import textwrap

import pytest

from repro.errors import LintError
from repro.staticcheck import (
    TOP,
    SetIntersectAnalysis,
    SetUnionAnalysis,
    build_cfg,
)


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


class _AssignedNames:
    """Shared transfer: accumulate names bound by Assign / for targets."""

    def transfer(self, fact, kind, node):
        if kind == "stmt" and isinstance(node, ast.Assign):
            names = frozenset(target.id for target in node.targets
                              if isinstance(target, ast.Name))
            return fact | names
        if kind == "for" and isinstance(node.target, ast.Name):
            return fact | {node.target.id}
        return fact


class MustAssigned(_AssignedNames, SetIntersectAnalysis):
    """Definitely-assigned-on-all-paths."""


class MayAssigned(_AssignedNames, SetUnionAnalysis):
    """Possibly-assigned-on-some-path."""


DIAMOND = """
    def f(p):
        if p:
            x = 1
            y = 2
        else:
            x = 3
        return x
"""


def test_must_analysis_intersects_at_joins():
    cfg = cfg_of(DIAMOND)
    at_exit = MustAssigned().solve(cfg)[cfg.exit]
    assert "x" in at_exit      # assigned on both arms
    assert "y" not in at_exit  # assigned on one arm only


def test_may_analysis_unions_at_joins():
    cfg = cfg_of(DIAMOND)
    at_exit = MayAssigned().solve(cfg)[cfg.exit]
    assert {"x", "y"} <= at_exit


def test_loop_body_is_not_guaranteed_to_run():
    cfg = cfg_of("""
        def f(items):
            for item in items:
                found = item
            return 0
    """)
    assert "found" not in MustAssigned().solve(cfg)[cfg.exit]
    assert "found" in MayAssigned().solve(cfg)[cfg.exit]


def test_facts_survive_the_back_edge():
    cfg = cfg_of("""
        def f(items):
            before = 1
            for item in items:
                inside = before
            return 0
    """)
    # "before" holds at loop entry from both the entry path and the
    # back edge, so the must-fact keeps it through the loop.
    assert "before" in MustAssigned().solve(cfg)[cfg.exit]


def test_unreachable_blocks_stay_top():
    cfg = cfg_of("""
        def f():
            return 1
            dead = 2
    """)
    in_facts = MustAssigned().solve(cfg)
    dead = [block for block in cfg.blocks
            if any(kind == "stmt" and isinstance(node, ast.Assign)
                   for kind, node in block.events)][0]
    assert in_facts[dead] is TOP


def test_block_out_applies_events_in_order():
    cfg = cfg_of("""
        def f():
            a = 1
            b = a
            return b
    """)
    analysis = MustAssigned()
    out = analysis.block_out(frozenset(), cfg.entry)
    assert {"a", "b"} <= out


class _NeverConverges(SetUnionAnalysis):
    """Grows its fact on every application — no fixpoint exists."""

    MAX_ITERATIONS = 3

    def transfer(self, fact, kind, node):
        return fact | {len(fact)}


def test_divergence_raises_a_typed_error():
    cfg = cfg_of("""
        def f(n):
            while n:
                n = n - 1
            return n
    """)
    with pytest.raises(LintError):
        _NeverConverges().solve(cfg)
