"""Sweep specification files (the declarative half of :mod:`repro.sweep`).

A spec is a TOML or JSON file with one ``[sweep]`` table describing an
experiment grid::

    [sweep]
    name = "full-grid"
    ops = 4000
    records = 2400
    seed = 42
    backends = ["pax", "pmdk", "pm_direct"]
    workloads = ["store_heavy", "mixed"]
    mechanisms = ["none", "victim:32", "stream:4x4"]
    llc_sizes_kib = [64, 256]
    llc_ways = 16
    hbm_lines = 64
    policies = ["lru"]
    device_mechanisms = ["none", "stream:4x4"]
    spot_check = "all"

Every list is a grid axis; the cell set is the cartesian product (with
``device_mechanisms`` entries other than ``"none"`` restricted to
PAX-family backends — other backends have no device to mechanize, so
those combinations are skipped rather than invented). ``spot_check`` is
``"all"``, ``"none"``, or an integer N: how many replayed cells are
re-run through the access engine and fingerprint-compared.
``hbm_lines`` (scalar, not an axis; 0 = the device default) shrinks the
PAX device's HBM cache so the device-mechanism axis sees PM traffic.

TOML parsing uses :mod:`tomllib` where available (Python >= 3.11); on
older interpreters a deterministic subset parser covers exactly the
grammar above (tables, strings, integers, floats, booleans, and
single-line arrays of scalars). JSON specs (a top-level ``{"sweep":
{...}}`` object) are always supported.
"""

from repro.errors import ConfigError

try:
    import tomllib as _tomllib
except ImportError:                      # Python <= 3.10
    _tomllib = None

#: Spec format identifier (embedded into reports for provenance).
SPEC_SCHEMA = "repro.sweep-spec/1"

#: Axis/knob defaults; also the authoritative key list — unknown keys in
#: a spec are a hard error, so typos fail loudly instead of silently
#: shrinking a grid.
DEFAULTS = {
    "name": "sweep",
    "ops": 4000,
    "records": 800,
    "seed": 42,
    "backends": ["pax", "pmdk", "pm_direct"],
    "workloads": ["store_heavy", "mixed"],
    "mechanisms": ["none", "victim:32"],
    "llc_sizes_kib": [256],
    "llc_ways": 16,
    "hbm_lines": 0,
    "policies": ["lru"],
    "device_mechanisms": ["none"],
    "spot_check": "all",
}

#: Backends that carry a PAX device (eligible for device_mechanisms).
PAX_BACKENDS = ("pax", "hybrid")

#: Every short name the baseline factory accepts (mirrors
#: repro.baselines.make_backend, which keeps its table function-local).
KNOWN_BACKENDS = ("dram", "pm_direct", "pmdk", "redo", "compiler",
                  "autopass", "mprotect", "pax", "hybrid")


def _parse_scalar(text, where):
    """Parse one TOML scalar: string, bool, integer, or float."""
    text = text.strip()
    if not text:
        raise ConfigError("%s: empty value" % where)
    if text[0] == '"':
        if len(text) < 2 or text[-1] != '"':
            raise ConfigError("%s: unterminated string %s" % (where, text))
        return text[1:-1]
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ConfigError("%s: cannot parse value %r" % (where, text)) \
            from None


def _split_array_items(body, where):
    """Split a single-line TOML array body on commas outside strings."""
    items = []
    current = []
    in_string = False
    for char in body:
        if char == '"':
            in_string = not in_string
            current.append(char)
        elif char == "," and not in_string:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    if in_string:
        raise ConfigError("%s: unterminated string in array" % where)
    tail = "".join(current)
    if tail.strip():
        items.append(tail)
    return [item for item in items if item.strip()]


def _parse_toml_subset(text, path):
    """Parse the spec TOML subset; returns a dict of tables.

    Covers: ``[table]`` headers, ``key = scalar`` and ``key = [scalar,
    ...]`` (single line) entries, ``#`` comments, blank lines. This is
    everything a sweep spec needs, and it behaves identically on every
    interpreter the CI matrix runs.
    """
    root = {}
    table = root
    for lineno, raw in enumerate(text.splitlines(), start=1):
        where = "%s:%d" % (path, lineno)
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ConfigError("%s: malformed table header %r"
                                  % (where, line))
            name = line[1:-1].strip()
            if not name:
                raise ConfigError("%s: empty table name" % where)
            table = root.setdefault(name, {})
            continue
        key, sep, value = line.partition("=")
        if not sep:
            raise ConfigError("%s: expected key = value, got %r"
                              % (where, line))
        key = key.strip()
        value = value.strip()
        # Trailing comments: cut at the first '#' outside a string.
        in_string = False
        for index, char in enumerate(value):
            if char == '"':
                in_string = not in_string
            elif char == "#" and not in_string:
                value = value[:index].rstrip()
                break
        if value.startswith("["):
            if not value.endswith("]"):
                raise ConfigError("%s: arrays must be single-line" % where)
            table[key] = [_parse_scalar(item, where)
                          for item in _split_array_items(value[1:-1], where)]
        else:
            table[key] = _parse_scalar(value, where)
    return root


def _load_raw(path):
    """Read ``path`` and parse it into a dict (TOML or JSON by suffix)."""
    import json
    with open(path, "rb") as handle:
        blob = handle.read()
    if path.endswith(".json"):
        try:
            return json.loads(blob.decode("utf-8"))
        except ValueError as exc:
            raise ConfigError("%s: bad JSON: %s" % (path, exc)) from None
    if _tomllib is not None:
        try:
            return _tomllib.loads(blob.decode("utf-8"))
        except _tomllib.TOMLDecodeError as exc:
            raise ConfigError("%s: bad TOML: %s" % (path, exc)) from None
    return _parse_toml_subset(blob.decode("utf-8"), path)


def _as_str_list(value, key):
    if isinstance(value, str):
        value = [value]
    if (not isinstance(value, list) or not value
            or not all(isinstance(item, str) for item in value)):
        raise ConfigError("spec key %r wants a non-empty list of strings"
                          % key)
    return list(value)


def _as_int_list(value, key):
    if isinstance(value, int) and not isinstance(value, bool):
        value = [value]
    if (not isinstance(value, list) or not value
            or not all(isinstance(item, int) and not isinstance(item, bool)
                       for item in value)):
        raise ConfigError("spec key %r wants a non-empty list of integers"
                          % key)
    return list(value)


def load_spec(path):
    """Load, default-fill, and validate a sweep spec; returns a dict.

    The returned dict has every :data:`DEFAULTS` key populated plus
    ``schema`` (:data:`SPEC_SCHEMA`) and ``source`` (the path), and its
    axis values are validated against the live registries (mechanism
    specs actually build, backends/workloads/policies exist), so a bad
    spec fails before any cell runs.
    """
    raw = _load_raw(path)
    if not isinstance(raw, dict) or not isinstance(raw.get("sweep"), dict):
        raise ConfigError("%s: a sweep spec needs a [sweep] table" % path)
    body = raw["sweep"]
    unknown = sorted(set(body) - set(DEFAULTS))
    if unknown:
        raise ConfigError("%s: unknown spec key(s): %s (have %s)"
                          % (path, ", ".join(unknown),
                             ", ".join(sorted(DEFAULTS))))
    spec = dict(DEFAULTS)
    spec.update(body)
    spec["schema"] = SPEC_SCHEMA
    spec["source"] = path

    if not isinstance(spec["name"], str) or not spec["name"]:
        raise ConfigError("%s: name must be a non-empty string" % path)
    for key in ("ops", "records", "seed", "llc_ways"):
        value = spec[key]
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ConfigError("%s: %s must be a positive integer"
                              % (path, key))
    hbm = spec["hbm_lines"]
    if not isinstance(hbm, int) or isinstance(hbm, bool) or hbm < 0:
        raise ConfigError("%s: hbm_lines must be a non-negative integer "
                          "(0 = the device default)" % path)
    spec["backends"] = _as_str_list(spec["backends"], "backends")
    spec["workloads"] = _as_str_list(spec["workloads"], "workloads")
    spec["mechanisms"] = _as_str_list(spec["mechanisms"], "mechanisms")
    spec["policies"] = _as_str_list(spec["policies"], "policies")
    spec["device_mechanisms"] = _as_str_list(spec["device_mechanisms"],
                                             "device_mechanisms")
    spec["llc_sizes_kib"] = _as_int_list(spec["llc_sizes_kib"],
                                         "llc_sizes_kib")

    from repro.cache.mechanisms import make_mechanisms
    from repro.cache.replacement import make_policy
    from repro.perfbench import WORKLOADS as KNOWN_WORKLOADS
    for backend in spec["backends"]:
        if backend not in KNOWN_BACKENDS:
            raise ConfigError("%s: unknown backend %r (have %s)"
                              % (path, backend,
                                 ", ".join(sorted(KNOWN_BACKENDS))))
    for workload in spec["workloads"]:
        if workload not in KNOWN_WORKLOADS:
            raise ConfigError("%s: unknown workload %r (have %s)"
                              % (path, workload, ", ".join(KNOWN_WORKLOADS)))
    for policy in spec["policies"]:
        make_policy(policy)              # raises ConfigError when unknown
    for mech_spec in spec["mechanisms"] + spec["device_mechanisms"]:
        for policy in spec["policies"]:
            make_mechanisms(mech_spec, policy)
    spot = spec["spot_check"]
    if not (spot in ("all", "none")
            or (isinstance(spot, int) and not isinstance(spot, bool)
                and spot >= 0)):
        raise ConfigError('%s: spot_check must be "all", "none", or a '
                          "non-negative integer" % path)
    return spec
