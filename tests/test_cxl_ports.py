"""Protocol ports end-to-end against a real device and hierarchy."""

import pytest

from repro.core.config import PaxConfig
from repro.core.device import PaxDevice
from repro.cxl.link import CxlLink
from repro.cxl.port import DevicePort, HostSnoopPort
from repro.errors import ProtocolError
from repro.pm.device import PmDevice
from repro.pm.pool import Pool
from repro.sim.clock import SimClock
from repro.sim.latency import default_model

VPM_BASE = 1 << 32


def build_port():
    pm = PmDevice("pm", 1 << 20)
    pool = Pool.format(pm, log_size=96 * 256)
    device = PaxDevice(pool, default_model(), vpm_base=VPM_BASE)
    link = CxlLink("cxl", SimClock(), 35.0, 63e9)
    return DevicePort(link, device), device, pool


class TestDevicePort:
    def test_read_shared_roundtrip(self):
        port, device, pool = build_port()
        pool.device.write(pool.data_base, b"DATA!" + b"\x00" * 59)
        data, latency = port.read_shared(VPM_BASE)
        assert data[:5] == b"DATA!"
        # Two link hops plus device service.
        assert latency >= 2 * 35.0

    def test_read_own_with_and_without_data(self):
        port, device, _pool = build_port()
        data, _ns = port.read_own(VPM_BASE, need_data=True)
        assert len(data) == 64
        payload, _ns = port.read_own(VPM_BASE, need_data=False)
        assert payload is None

    def test_evict_dirty_roundtrip(self):
        port, device, _pool = build_port()
        port.read_own(VPM_BASE, need_data=True)
        latency = port.evict_dirty(VPM_BASE, b"\x11" * 64)
        assert latency > 0
        assert device.writeback.peek(device.to_pool(VPM_BASE)) == b"\x11" * 64

    def test_evict_clean_roundtrip(self):
        port, _device, _pool = build_port()
        assert port.evict_clean(VPM_BASE) > 0

    def test_transactions_counted(self):
        port, _device, _pool = build_port()
        port.read_shared(VPM_BASE)
        port.read_shared(VPM_BASE + 64)
        assert port.stats.get("transactions") == 2

    def test_protocol_violation_detected(self):
        # A device answering the wrong type must be caught by the adapter.
        class BrokenDevice:
            def handle_message(self, message):
                from repro.cxl import messages as msg
                return msg.Go(message.addr), 0.0

        port = DevicePort(CxlLink("cxl", SimClock(), 35.0, 63e9),
                          BrokenDevice())
        with pytest.raises(ProtocolError):
            port.read_shared(VPM_BASE)


class TestHostSnoopPort:
    def test_snoop_against_hierarchy(self, pax_machine):
        mem = pax_machine.mem()
        mem.write_u64(4096, 0x77)
        port = pax_machine.snoop_port
        fresh, latency = port.snoop_shared((4096 // 64) * 64
                                           + (1 << 32))
        assert fresh is not None
        assert latency >= 2 * pax_machine.latency.link.cxl_ns
        assert port.stats.get("dirty_pulls") == 1

    def test_snoop_clean_line(self, pax_machine):
        mem = pax_machine.mem()
        mem.read_u64(4096)
        fresh, _latency = pax_machine.snoop_port.snoop_shared(
            (4096 // 64) * 64 + (1 << 32))
        assert fresh is None

    def test_snoop_invalidate(self, pax_machine):
        mem = pax_machine.mem()
        mem.write_u64(4096, 5)
        line = (4096 // 64) * 64 + (1 << 32)
        fresh, _latency = pax_machine.snoop_port.snoop_invalidate(line)
        assert fresh is not None
        assert pax_machine.hierarchy.directory.sharers(line) == []
