"""The write-back coordinator: the durability gate (paper §3.3)."""

import pytest

from repro.core.config import PaxConfig
from repro.core.hbm import HbmCache
from repro.core.undo import UndoLogger
from repro.core.writeback import WriteBackCoordinator
from repro.pm.device import PmDevice
from repro.pm.log import ENTRY_SIZE, UndoLogRegion
from repro.pm.pool import Pool
from repro.util.constants import CACHE_LINE_SIZE


def build(buffer_lines=4, prefer_durable=True):
    device = PmDevice("pm", 1 << 20)
    pool = Pool.format(device, log_size=96 * 256)
    region = UndoLogRegion(device, pool.log_base, pool.log_size)
    config = PaxConfig(writeback_buffer_lines=buffer_lines,
                       prefer_durable_eviction=prefer_durable)
    undo = UndoLogger(region, config, start_epoch=1)
    hbm = HbmCache(16)
    wbc = WriteBackCoordinator(pool, hbm, undo, config)
    return wbc, undo, pool, hbm


def line_at(pool, index):
    return pool.data_base + index * CACHE_LINE_SIZE


class TestBuffering:
    def test_buffer_and_peek(self):
        wbc, undo, pool, _hbm = build()
        addr = line_at(pool, 0)
        seq = undo.note_modification(addr, b"old" + b"\x00" * 61)
        wbc.buffer_line(addr, b"new" + b"\x00" * 61, seq)
        assert wbc.peek(addr)[:3] == b"new"
        assert len(wbc) == 1

    def test_update_in_place(self):
        wbc, undo, pool, _hbm = build(buffer_lines=2)
        addr = line_at(pool, 0)
        seq = undo.note_modification(addr, b"o" * 64)
        wbc.buffer_line(addr, b"1" * 64, seq)
        wbc.buffer_line(addr, b"2" * 64, seq)
        assert len(wbc) == 1
        assert wbc.peek(addr) == b"2" * 64

    def test_pm_untouched_while_buffered(self):
        wbc, undo, pool, _hbm = build()
        addr = line_at(pool, 0)
        pool.device.write(addr, b"orig" + b"\x00" * 60)
        seq = undo.note_modification(addr, pool.device.read(addr, 64))
        wbc.buffer_line(addr, b"new!" + b"\x00" * 60, seq)
        assert pool.device.read(addr, 4) == b"orig"


class TestDurabilityGate:
    def test_background_drain_skips_undurable(self):
        wbc, undo, pool, _hbm = build()
        addr = line_at(pool, 0)
        seq = undo.note_modification(addr, b"o" * 64)
        wbc.buffer_line(addr, b"n" * 64, seq)
        written = wbc.drain_budget(10 * CACHE_LINE_SIZE)
        assert written == 0                   # record still volatile
        undo.pump()
        written = wbc.drain_budget(10 * CACHE_LINE_SIZE)
        assert written == CACHE_LINE_SIZE
        assert pool.device.read(addr, 1) == b"n"

    def test_capacity_eviction_prefers_durable(self):
        wbc, undo, pool, _hbm = build(buffer_lines=2)
        a, b, c = (line_at(pool, i) for i in range(3))
        seq_a = undo.note_modification(a, b"a" * 64)
        seq_b = undo.note_modification(b, b"b" * 64)
        undo.drain_until(seq_b)               # both a,b durable
        wbc.buffer_line(a, b"A" * 64, seq_a)
        wbc.buffer_line(b, b"B" * 64, seq_b)
        seq_c = undo.note_modification(c, b"c" * 64)
        pumped = wbc.buffer_line(c, b"C" * 64, seq_c)
        assert pumped == 0                    # durable victim available
        assert len(wbc) == 2
        assert wbc.stats.get("forced_log_pumps") == 0
        assert pool.device.read(a, 1) == b"A"   # oldest durable evicted

    def test_policy_divergence_on_out_of_order_evictions(self):
        # Logging order: a then b. Eviction order: b then a (LLC set
        # conflicts reorder in practice). Frontier covers only a.
        # durable-first evicts a (no pump); FIFO evicts head b (pump).
        for prefer, expected_pumps in ((True, 0), (False, 1)):
            wbc, undo, pool, _hbm = build(buffer_lines=2,
                                          prefer_durable=prefer)
            a, b, c = (line_at(pool, i) for i in range(3))
            seq_a = undo.note_modification(a, b"a" * 64)
            seq_b = undo.note_modification(b, b"b" * 64)
            undo.drain_until(seq_a)            # frontier: a durable, b not
            wbc.buffer_line(b, b"B" * 64, seq_b)   # head (evicted first)
            wbc.buffer_line(a, b"A" * 64, seq_a)
            seq_c = undo.note_modification(c, b"c" * 64)
            wbc.buffer_line(c, b"C" * 64, seq_c)   # overflow
            assert wbc.stats.get("forced_log_pumps") == expected_pumps, \
                "prefer_durable=%s" % prefer

    def test_overflow_without_durable_forces_pump(self):
        wbc, undo, pool, _hbm = build(buffer_lines=1)
        a, b = line_at(pool, 0), line_at(pool, 1)
        seq_a = undo.note_modification(a, b"a" * 64)
        wbc.buffer_line(a, b"A" * 64, seq_a)
        seq_b = undo.note_modification(b, b"b" * 64)
        pumped = wbc.buffer_line(b, b"B" * 64, seq_b)
        assert pumped == ENTRY_SIZE           # forced drain of a's record
        assert wbc.stats.get("forced_log_pumps") == 1
        assert pool.device.read(a, 1) == b"A"

    def test_working_set_exceeds_buffer(self):
        # Paper: "working set size is not limited by device-side capacity".
        wbc, undo, pool, _hbm = build(buffer_lines=4)
        for index in range(32):
            addr = line_at(pool, index)
            seq = undo.note_modification(addr, b"o" * 64)
            wbc.buffer_line(addr, bytes([index]) * 64, seq)
        assert len(wbc) <= 4
        # Every evicted line reached PM with its logged pre-image durable.
        for index in range(28):
            assert pool.device.read(line_at(pool, index), 1)[0] == index


class TestFlushAll:
    def test_flush_writes_everything_in_log_order(self):
        wbc, undo, pool, hbm = build(buffer_lines=8)
        addrs = [line_at(pool, i) for i in range(3)]
        for index, addr in enumerate(addrs):
            seq = undo.note_modification(addr, b"o" * 64)
            wbc.buffer_line(addr, bytes([index + 1]) * 64, seq)
        pumped, lines = wbc.flush_all()
        assert lines == 3
        assert pumped == 3 * ENTRY_SIZE
        assert len(wbc) == 0
        for index, addr in enumerate(addrs):
            assert pool.device.read(addr, 1)[0] == index + 1
            assert hbm.get(addr) is not None     # mirror refreshed

    def test_crash_empties_buffer(self):
        wbc, undo, pool, _hbm = build()
        addr = line_at(pool, 0)
        seq = undo.note_modification(addr, b"o" * 64)
        wbc.buffer_line(addr, b"N" * 64, seq)
        lost = wbc.on_crash()
        assert lost == 1
        assert len(wbc) == 0
        assert pool.device.read(addr, 1) != b"N"
