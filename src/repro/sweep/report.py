"""Rendering and persistence for sweep reports (:mod:`repro.sweep`).

Three consumers, three views of the same report dict:

* :func:`write_report` / :func:`load_report` — the canonical JSON form.
  Deterministic (sorted keys, no wall-clock content), so CI can demand
  byte-identical reruns with ``cmp``.
* :func:`to_markdown` — human-readable grid tables, one per workload,
  for PR comments and CI artifacts.
* :func:`perfbench_view` — the sweep reshaped into the perfbench report
  schema so :func:`repro.perfbench.compare_report` can grade sweep runs
  against committed sweep baselines with its exact ``sim_ns`` check.
  Wall-clock fields are zeroed (a sweep never measures wall time), which
  makes the throughput-tolerance half of the comparison inert while the
  behaviour-drift half stays fully armed.
"""

import json

from repro import perfbench
from repro.errors import ConfigError


def write_report(report, path):
    """Write ``report`` as pretty JSON with a trailing newline.

    Sorted keys + deterministic content = byte-identical same-seed
    reruns, the property CI's ``sweep-smoke`` job checks with ``cmp``.
    """
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path):
    """Load and schema-check a report written by :func:`write_report`."""
    from repro.sweep import SCHEMA
    with open(path) as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise ConfigError("%s is not a %s report (schema=%r)"
                          % (path, SCHEMA, report.get("schema")))
    return report


def _verified_glyph(flag):
    if flag is None:
        return "-"
    return "yes" if flag else "**MISMATCH**"


def to_markdown(report):
    """Render ``report`` as GitHub-flavoured markdown tables."""
    spec = report["spec"]
    lines = [
        "# Sweep: %s" % spec["name"],
        "",
        "Spec: `%s` — ops=%d records=%d seed=%d llc_ways=%d"
        % (report.get("spec_source") or "(inline)", spec["ops"],
           spec["records"], spec["seed"], spec["llc_ways"]),
        "",
        "%d cells from %d recorded traces (record once, replay many)."
        % (len(report["cells"]), report["traces_recorded"]),
        "",
    ]
    workloads = []
    for cell in report["cells"]:
        if cell["workload"] not in workloads:
            workloads.append(cell["workload"])
    for workload in workloads:
        lines.append("## %s" % workload)
        lines.append("")
        lines.append("| backend | mechanisms | device mech | LLC | policy "
                     "| engine | sim_ns (timed) | host hits | dev hits "
                     "| verified |")
        lines.append("|---|---|---|---|---|---|---:|---:|---:|---|")
        for cell in report["cells"]:
            if cell["workload"] != workload:
                continue
            counters = cell["counters"]
            lines.append(
                "| %s | %s | %s | %dKiB | %s | %s | %d | %d | %s | %s |"
                % (cell["backend"], cell["mechanisms"],
                   cell["device_mechanisms"], cell["llc_kib"],
                   cell["policy"], cell["engine"], cell["sim_ns_timed"],
                   counters["host_mech_hits"],
                   counters.get("dev_mech_hits", "-"),
                   _verified_glyph(cell["verified"])))
        lines.append("")
    verification = report["verification"]
    lines.append("## Verification")
    lines.append("")
    lines.append("%d cells fingerprint-checked against the per-access "
                 "engine: %d passed, %d failed."
                 % (verification["checked"], verification["passed"],
                    verification["failed"]))
    for failure in verification["failures"]:
        lines.append("")
        lines.append("* **%s/%s %s** — %d mismatched fingerprint key(s), "
                     "first: `%s`"
                     % (failure["workload"], failure["backend"],
                        failure["variant"], failure["mismatch_count"],
                        failure["mismatches"][0]["key"]
                        if failure["mismatches"] else "?"))
    lines.append("")
    return "\n".join(lines)


def perfbench_view(report):
    """Reshape a sweep report into the perfbench report schema.

    Each sweep cell becomes a perfbench cell whose ``mechanisms`` field
    is the full :func:`repro.sweep.variant_id` string, so every grid
    point keys distinctly under :func:`repro.perfbench.compare_report`.
    """
    spec = report["spec"]
    results = []
    for cell in report["cells"]:
        results.append({
            "workload": cell["workload"],
            "backend": cell["backend"],
            "engine": cell["engine"],
            "mechanisms": cell["variant"],
            "wall_s": 0.0,
            "ops_per_sec": 0.0,
            "sim_ns": cell["sim_ns_timed"],
        })
    return {
        "schema": perfbench.SCHEMA,
        "config": {
            "ops": spec["ops"],
            "records": spec["records"],
            "seed": spec["seed"],
            "repeats": 1,
            "workloads": list(spec["workloads"]),
            "backends": list(spec["backends"]),
            "engines": ["replay"],
            "mechanisms": "sweep",
        },
        "results": results,
    }


def compare_sweeps(current, baseline, tolerance=0.30):
    """Grade ``current`` against a baseline sweep report.

    Both arguments are sweep reports; the comparison itself is
    :func:`repro.perfbench.compare_report` run over the perfbench views,
    so the exact-``sim_ns`` drift check (and its problem strings) are
    shared with the wall-clock harness rather than reimplemented.
    """
    return perfbench.compare_report(perfbench_view(current),
                                    perfbench_view(baseline),
                                    tolerance=tolerance)
