"""Derived cache statistics: per-level hit/miss rates and AMAT inputs.

The Figure 2a analysis (:mod:`repro.analysis.amat`) combines the miss
rates measured here with the latency model, exactly as the paper combines
measured c6420 miss rates with published media latencies.
"""

from dataclasses import dataclass

from repro.util.stats import ratio


@dataclass
class MissRates:
    """Fraction of accesses that miss at each level, plus raw counts."""

    accesses: int
    l1_hits: int
    l2_hits: int
    llc_hits: int
    memory_fetches: int
    cross_core: int = 0

    @classmethod
    def from_hierarchy(cls, hierarchy):
        """Extract miss rates from a :class:`CacheHierarchy`'s counters.

        An "access" here is one per-line coherence walk; multi-line loads
        count once per line.
        """
        stats = hierarchy.stats
        l1 = stats.get("l1_hits")
        l2 = stats.get("l2_hits")
        llc = stats.get("llc_hits")
        mem = stats.get("memory_fetches")
        cross = stats.get("cross_core_transfers")
        return cls(accesses=l1 + l2 + llc + mem + cross,
                   l1_hits=l1, l2_hits=l2, llc_hits=llc,
                   memory_fetches=mem, cross_core=cross)

    @property
    def l1_miss_rate(self):
        """Fraction of all accesses that missed L1."""
        return ratio(self.accesses - self.l1_hits, self.accesses)

    @property
    def l2_miss_rate(self):
        """Of accesses that missed L1, fraction that also missed L2."""
        missed_l1 = self.accesses - self.l1_hits
        return ratio(missed_l1 - self.l2_hits, missed_l1)

    @property
    def llc_miss_rate(self):
        """Of accesses that missed L2, fraction that also missed the LLC."""
        missed_l2 = self.accesses - self.l1_hits - self.l2_hits
        return ratio(missed_l2 - self.llc_hits - self.cross_core, missed_l2)

    @property
    def memory_access_fraction(self):
        """Fraction of all accesses serviced by a home (memory/device)."""
        return ratio(self.memory_fetches, self.accesses)

    def as_dict(self):
        """Flat dict for reports."""
        return {
            "accesses": self.accesses,
            "l1_miss_rate": self.l1_miss_rate,
            "l2_miss_rate": self.l2_miss_rate,
            "llc_miss_rate": self.llc_miss_rate,
            "memory_fraction": self.memory_access_fraction,
        }
