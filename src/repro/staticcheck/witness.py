"""Trace-grounded witnesses for interprocedural staticcheck findings.

A static finding says "this PM store *can* execute outside a persist
gate"; a recorded :mod:`repro.replay` trace says what a real run
actually did. This pass bridges the two: it walks each trace with the
same protection semantics the crash checker uses — a ``STORE`` /
``RAW_WRITE`` is protected iff it lands inside an open WAL window (a
``WAL_APPEND`` has happened since the last ``WAL_RESET``) or a later
``PERSIST`` covers it — and calls the trace *unsafe* when unprotected
stores are still pending at the final event (a crash there loses them).

An unsafe trace then *confirms* every surviving finding whose module is
reachable from the recorded backend's module through the import graph
(the trace footer names the backend; the backend class is found by its
``name = "..."`` class attribute). Everything else stays
``static-only`` — still a real lattice fact, just not demonstrated by
the traces at hand. The verdict lands on ``finding.properties`` so the
JSON/SARIF emitters can carry it.
"""

import ast
import os

from repro.errors import LintError, TraceFormatError
from repro.lint.engine import iter_python_files
from repro.replay.format import (
    PERSIST,
    RAW_WRITE,
    STORE,
    WAL_APPEND,
    WAL_RESET,
    load_trace,
)
from repro.staticcheck.callgraph import ProjectIndex, module_key


def unsafe_store_count(trace):
    """How many PM stores are still unprotected at end-of-trace.

    Walks the event stream once, counting ``STORE``/``RAW_WRITE``
    events issued outside an open WAL window; each ``PERSIST`` retires
    everything pending before it. The residue is exactly what a crash
    at the last event would lose.
    """
    wal_open = False
    pending = 0
    for kind in trace.kinds:
        if kind in (STORE, RAW_WRITE):
            if not wal_open:
                pending += 1
        elif kind == WAL_APPEND:
            wal_open = True
        elif kind == WAL_RESET:
            wal_open = False
        elif kind == PERSIST:
            pending = 0
    return pending


def _backend_module(project, backend_name):
    """The module key declaring the class whose ``name`` class attribute
    equals ``backend_name``, or None."""
    for key in sorted(project.modules):
        module = project.modules[key]
        for class_name in sorted(module.classes):
            decl = module.classes[class_name]
            for node in decl.node.body:
                if not isinstance(node, ast.Assign):
                    continue
                names = [target.id for target in node.targets
                         if isinstance(target, ast.Name)]
                if "name" in names \
                        and isinstance(node.value, ast.Constant) \
                        and node.value.value == backend_name:
                    return key
    return None


def _import_closure(project, root_key):
    """Module keys reachable from ``root_key`` via top-level imports."""
    seen = {root_key}
    frontier = [root_key]
    while frontier:
        module = project.modules.get(frontier.pop())
        if module is None:
            continue
        for target in module.imports.values():
            if target in project.modules and target not in seen:
                seen.add(target)
                frontier.append(target)
    return seen


def apply_witnesses(findings, trace_paths, source_roots=None):
    """Label every finding ``confirmed`` or ``static-only``.

    ``trace_paths`` are recorded :mod:`repro.replay` trace files;
    ``source_roots`` defaults to the top-level directories of the
    finding paths (the project the findings came from is re-indexed to
    walk its import graph). Returns ``(confirmed, static_only)``
    counts; mutates ``finding.properties`` in place.
    """
    if source_roots is None:
        roots = {finding.path.replace(os.sep, "/").split("/")[0]
                 for finding in findings}
        source_roots = sorted(root for root in roots if root)
    sources = []
    for filename in iter_python_files(source_roots):
        with open(filename, "r", encoding="utf-8") as handle:
            sources.append((filename, handle.read()))
    project = ProjectIndex.build(sources)

    confirmed_modules = set()
    for trace_path in trace_paths:
        try:
            trace = load_trace(trace_path)
        except TraceFormatError as exc:
            raise LintError("witness trace %s: %s" % (trace_path, exc))
        if unsafe_store_count(trace) <= 0:
            continue
        backend = (trace.footer or {}).get("backend")
        if not backend:
            continue
        root = _backend_module(project, backend)
        if root is None:
            continue
        confirmed_modules |= _import_closure(project, root)

    confirmed = 0
    static_only = 0
    for finding in findings:
        key = module_key(finding.path)
        verdict = ("confirmed" if key in confirmed_modules
                   else "static-only")
        properties = dict(getattr(finding, "properties", None) or {})
        properties["witness"] = verdict
        finding.properties = properties
        if verdict == "confirmed":
            confirmed += 1
        else:
            static_only += 1
    return confirmed, static_only
