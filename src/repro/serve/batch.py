"""Group-commit batching: many clients' persists, one epoch commit.

The paper's device amortizes snapshot cost over an epoch (§3.2); a
serving frontend amortizes it over *clients*: persist requests park in a
:class:`GroupCommitBatcher` and a single ``pool.persist()`` — one device
epoch commit, one snoop sweep — acknowledges the whole batch. The batch
flushes when it reaches ``batch_max`` waiters or when the oldest waiter
has been parked for ``batch_delay_ns`` of simulated time; an idle server
fast-forwards its clock to that deadline rather than flushing early, so
the delay window is always given a chance to coalesce.
"""

from repro.errors import ConfigError


class GroupCommitBatcher:
    """Parks persist requests for one pool and commits them together."""

    def __init__(self, pool, clock, batch_max=16, batch_delay_ns=150_000.0):
        if batch_max < 1:
            raise ConfigError("group-commit batch size must be at least 1")
        if batch_delay_ns < 0:
            raise ConfigError("group-commit delay cannot be negative")
        self.pool = pool
        self.clock = clock
        self.batch_max = batch_max
        self.batch_delay_ns = batch_delay_ns
        self._waiters = []
        self._opened_ns = None

    def __len__(self):
        return len(self._waiters)

    @property
    def waiting(self):
        """True while any persist request is parked in the open batch."""
        return bool(self._waiters)

    def park(self, request):
        """Add a persist request to the open batch."""
        if not self._waiters:
            self._opened_ns = self.clock.now_ns
        self._waiters.append(request)
        request.waiting_shards += 1

    def due(self, now_ns):
        """True when the open batch must flush before more work runs."""
        if not self._waiters:
            return False
        if len(self._waiters) >= self.batch_max:
            return True
        # Same expression as :attr:`deadline_ns`: ``now - opened >= delay``
        # is NOT float-equivalent to ``now >= opened + delay``, and the
        # idle path advances the clock exactly to the deadline — the two
        # must agree or the harness stalls on the boundary.
        return now_ns >= self._opened_ns + self.batch_delay_ns

    @property
    def deadline_ns(self):
        """Sim-time when the open batch ages out (None when empty).

        The harness's idle path advances the clock *to* this deadline
        rather than flushing early — a lone persist waits its full
        ``batch_delay_ns`` for co-travelers, which is where group
        commit's coalescing comes from under closed-loop clients.
        """
        if not self._waiters:
            return None
        return self._opened_ns + self.batch_delay_ns

    def flush(self):
        """Commit one epoch covering every parked persist.

        Returns ``(waiters, commit_ns)``: the requests whose durability
        is now acknowledged (crash-failed ones are dropped, not
        acknowledged) and the blocking commit latency. Returns
        ``([], 0.0)`` when nothing is parked — a crash may have failed
        every waiter — so idle callers can flush unconditionally.
        """
        waiters = [w for w in self._waiters if not w.failed]
        if not waiters:
            self._waiters = []
            self._opened_ns = None
            return [], 0.0
        # Persist before clearing: if the commit itself dies (a lossy
        # link giving up mid-snapshot), the batch stays parked and the
        # caller's fail-stop path fails every waiter with a typed error.
        commit_ns = self.pool.persist()
        self._waiters = []
        self._opened_ns = None
        for waiter in waiters:
            waiter.waiting_shards -= 1
        return waiters, commit_ns

    def fail_all(self):
        """Crash path: every parked waiter is failed, nothing commits.

        Returns only the *freshly* failed requests (a multi-shard persist
        already failed by another shard's crash is excluded, so the
        harness notifies each client exactly once); the harness attaches
        the typed error to those.
        """
        waiters = self._waiters
        self._waiters = []
        self._opened_ns = None
        fresh = [w for w in waiters if not w.failed]
        for waiter in waiters:
            waiter.failed = True
            waiter.waiting_shards = 0
        return fresh
