"""The write-back coordinator (paper §3.3).

Buffers modified lines at the device — lines the host evicted dirty, or
fresh values pulled out of host caches during ``persist()`` — and writes
them to PM, subject to one rule: **a line may reach PM only after its undo
record is durable**. Each buffered line carries the sequence number of its
record; the undo log durability frontier (a single monotonically
increasing number) makes the gate a trivial comparison.

When the buffer overflows, eviction *prefers lines whose records are
already durable* so the device need not stall on a synchronous log pump;
only if every buffered line's record is still volatile does it force-drain
the log up to the oldest line's seq. This is exactly the capacity-escape
hatch the paper contrasts with Intel TSX's working-set limits.
"""

from collections import OrderedDict

from repro.util.constants import CACHE_LINE_SIZE
from repro.util.stats import StatGroup


class _BufferedLine:
    __slots__ = ("data", "seq")

    def __init__(self, data, seq):
        self.data = bytes(data)
        self.seq = seq


class WriteBackCoordinator:
    """Bounded buffer of modified lines, drained to PM under the log gate."""

    def __init__(self, pool, hbm, undo, config):
        self._pool = pool
        self._hbm = hbm
        self._undo = undo
        self._config = config
        self._buffer = OrderedDict()     # pool_addr -> _BufferedLine (FIFO)
        self._drain_credit = 0.0
        self.stats = StatGroup("writeback")
        # Per-line counters bound once (hot-path-stat-lookup rule).
        self._c_updates = self.stats.counter("updates")
        self._c_insertions = self.stats.counter("insertions")
        self._c_forced_pumps = self.stats.counter("forced_log_pumps")
        self._c_capacity_evictions = self.stats.counter("capacity_evictions")
        self._c_pm_line_writes = self.stats.counter("pm_line_writes")

    def __len__(self):
        return len(self._buffer)

    def __contains__(self, pool_addr):
        return pool_addr in self._buffer

    def peek(self, pool_addr):
        """Return buffered line data (newest device-known value) or None."""
        entry = self._buffer.get(pool_addr)
        return entry.data if entry is not None else None

    # -- intake ---------------------------------------------------------------

    def buffer_line(self, pool_addr, data, seq):
        """Accept a modified line; returns stall ns-equivalent bytes pumped.

        If the buffer is full, one victim is written back first, possibly
        forcing a log pump; the returned byte count is the log bytes the
        caller should charge as a synchronous stall (0 in the happy path).
        """
        pumped = 0
        existing = self._buffer.get(pool_addr)
        if existing is not None:
            existing.data = bytes(data)
            existing.seq = max(existing.seq, seq)
            self._buffer.move_to_end(pool_addr)
            self._c_updates.add(1)
            return pumped
        while len(self._buffer) >= self._config.writeback_buffer_lines:
            pumped += self._evict_one()
        self._buffer[pool_addr] = _BufferedLine(data, seq)
        self._c_insertions.add(1)
        return pumped

    # -- eviction under the durability gate ---------------------------------------

    def _evict_one(self):
        """Write one buffered line to PM to make room; returns log bytes pumped."""
        victim_addr = None
        if self._config.prefer_durable_eviction:
            for addr, entry in self._buffer.items():
                if self._undo.is_durable(entry.seq):
                    victim_addr = addr
                    break
        if victim_addr is None:
            # No durable-logged line available (or policy disabled): take
            # the FIFO head and force the log up to its record.
            victim_addr = next(iter(self._buffer))
        entry = self._buffer.pop(victim_addr)
        pumped = 0
        if not self._undo.is_durable(entry.seq):
            pumped = self._undo.drain_until(entry.seq)
            self._c_forced_pumps.add(1)
        self._write_to_pm(victim_addr, entry.data)
        self._c_capacity_evictions.add(1)
        return pumped

    # -- draining -----------------------------------------------------------------

    def drain_budget(self, byte_budget):
        """Background write-back of ready (durably-logged) lines."""
        self._drain_credit += byte_budget
        written = 0
        for addr in list(self._buffer):
            if self._drain_credit < CACHE_LINE_SIZE:
                break
            entry = self._buffer[addr]
            if not self._undo.is_durable(entry.seq):
                continue
            del self._buffer[addr]
            self._write_to_pm(addr, entry.data)
            self._drain_credit -= CACHE_LINE_SIZE
            written += CACHE_LINE_SIZE
        return written

    def flush_all(self):
        """persist(): pump the log, then write every buffered line to PM.

        Returns ``(log_bytes_pumped, lines_written)`` for timing.
        """
        pumped = self._undo.pump()
        lines = 0
        while self._buffer:
            addr, entry = self._buffer.popitem(last=False)
            self._write_to_pm(addr, entry.data)
            lines += 1
        return pumped, lines

    def _write_to_pm(self, pool_addr, data):
        self._pool.device.write(pool_addr, data)
        self._hbm.put(pool_addr, data)
        self._c_pm_line_writes.add(1)

    def on_crash(self):
        """The buffer is device SRAM: a crash empties it."""
        lost = len(self._buffer)
        self._buffer.clear()
        self.stats.counter("lines_lost_in_crash").add(lost)
        return lost
