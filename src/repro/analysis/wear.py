"""PM endurance analysis: where the writes land.

Persistent memory wears per write, and write-ahead logging concentrates
writes: every operation hammers the (small) log region while the data
region sees only final values. This module splits a backend's media
writes into log-region and data-region traffic and reports the wear
hotspot (the most-written single line) — the number an endurance budget
is sized against.

(The undo log region itself is the hotspot for *every* scheme including
PAX; PAX's advantage is writing it asynchronously and — with per-epoch
dedup — less often. Real devices level wear beneath the physical layer;
this measures the logical pressure the scheme generates.)
"""

from dataclasses import dataclass


@dataclass
class WearReport:
    """Media wear summary for one backend run."""

    name: str
    data_region_writes: int
    log_region_writes: int
    lines_touched: int
    total_line_writes: int
    max_line_wear: int

    @property
    def log_fraction(self):
        """Share of all line writes that hit the log region."""
        if self.total_line_writes == 0:
            return 0.0
        return self.log_region_writes / self.total_line_writes

    @property
    def skew(self):
        """Hotspot factor: max single-line writes / mean line writes."""
        if self.lines_touched == 0:
            return 0.0
        mean = self.total_line_writes / self.lines_touched
        return self.max_line_wear / mean if mean else 0.0


def _regions(backend):
    """(device, log_base, log_size, data_base, data_size) per scheme."""
    machine = backend.machine
    if hasattr(machine, "pm"):                  # PAX-family
        pool = machine.pool
        return (machine.pm, pool.log_base, pool.log_size,
                pool.data_base, pool.data_size)
    device = machine.memory
    layout = getattr(backend, "_layout", None)
    if layout is not None and hasattr(layout, "wal_base"):
        return (device, layout.wal_base, layout.wal_size,
                0, layout.arena_limit)
    if layout is not None and hasattr(layout, "log_base"):
        return (device, layout.log_base, layout.log_size,
                0, layout.arena_limit)
    return (device, 0, 0, 0, device.size)


def measure_wear(backend):
    """Summarize a backend's accumulated media wear into a report."""
    device, log_base, log_size, data_base, data_size = _regions(backend)
    lines_touched, total, max_wear = device.wear_profile()
    return WearReport(
        name=backend.name,
        data_region_writes=device.region_writes(data_base, data_size),
        log_region_writes=device.region_writes(log_base, log_size),
        lines_touched=lines_touched,
        total_line_writes=total,
        max_line_wear=max_wear)
