"""Auto-fix for ``persist-order`` findings: gate insertion by rewrite.

:func:`fix_source` plans gate regions (:mod:`repro.staticcheck.
placement`), picks the backend idiom the surrounding code already uses,
and splices the gates in as token-preserving line edits
(:mod:`repro.staticcheck.rewriter`):

``tx`` style
    ``<receiver>.begin()`` above the region, ``<receiver>.end()`` after
    it and before every in-region ``return``.
``with`` style
    ``with <receiver>.transaction():`` above the region, region body
    re-indented under it.
``wal`` style
    ``<receiver>.append(<addr>, <value>)`` above each storing
    statement (a WAL append *opens* the gate; no close exists).

The receiver is resolved from what the function can actually reach, in
priority order: a ``tx``-named parameter, an accessor-named parameter,
a ``tx``/accessor attribute the function references, one assigned
anywhere in the enclosing class, then a WAL-named parameter/attribute.
Functions with none of these are reported unfixable rather than
guessed at.

Idempotence contract: the fixer only gates stores the checker reports
uncovered, and every insertion it makes covers its stores under the
same checker — so a second run sees no findings and makes no edits.
:func:`fix_source` enforces this internally by iterating to a
fixed point (later rounds fall back to per-store placement) and
re-checking the final source.
"""

import ast

from repro.errors import LintError
from repro.staticcheck import placement
from repro.staticcheck.checkers import _ACCESSOR_NAMES, _GATE_LOG_RECEIVERS
from repro.staticcheck.rewriter import (
    Indentation,
    Insertion,
    apply_edits,
    indent_of,
    unified_diff,
)

__all__ = ["FixReport", "fix_source", "fix_paths", "unified_diff"]

#: Receiver names tried first: an explicit transaction handle.
_TX_NAMES = ("tx", "_tx")

#: Styles the CLI accepts; "auto" picks per receiver kind.
FIX_STYLES = ("auto", "tx", "with", "wal")

#: Fixed-point bound; rounds 3+ use per-store placement, so two extra
#: rounds suffice for anything the region planner half-covers.
MAX_ROUNDS = 5


class FixReport:
    """What one :func:`fix_source` run did to one file."""

    __slots__ = ("path", "gates", "rounds", "unfixable", "changed")

    def __init__(self, path):
        self.path = path
        #: Open-gate sites inserted (begin / with / wal-append lines).
        self.gates = 0
        self.rounds = 0
        #: ``(lineno, col, reason)`` for stores no edit could cover.
        self.unfixable = []
        self.changed = False

    def __repr__(self):
        return "FixReport(%s, gates=%d, rounds=%d, unfixable=%d)" % (
            self.path, self.gates, self.rounds, len(self.unfixable))


# -- receiver resolution -----------------------------------------------------


def _functions_with_owner(tree):
    """Every function with its enclosing class (or None), mirroring
    ``CheckContext.functions`` traversal."""
    collected = []

    def visit(body, owner):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                collected.append((node, owner))
                visit(node.body, owner)
            elif isinstance(node, ast.ClassDef):
                visit(node.body, node)
            else:
                nested = [child for child in ast.iter_child_nodes(node)
                          if isinstance(child, ast.stmt)]
                if nested:
                    visit(nested, owner)
    visit(tree.body, None)
    return collected


def _param_names(func):
    args = func.args
    params = [arg.arg for arg in
              getattr(args, "posonlyargs", []) + args.args + args.kwonlyargs]
    return [name for name in params if name not in ("self", "cls")]


def _self_attr_names(func):
    """Attributes of ``self`` referenced in ``func``, in walk order."""
    names = []
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self" \
                and node.attr not in names:
            names.append(node.attr)
    return names


def _class_attr_names(class_node):
    """Attributes assigned on ``self`` anywhere in the class, in order."""
    names = []
    if class_node is None:
        return names
    for node in ast.walk(class_node):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self" \
                    and target.attr not in names:
                names.append(target.attr)
    return names


def _pick(candidates, pool):
    for name in candidates:
        if name in pool:
            return name
    return None


def _resolve_receiver(func, class_node):
    """``(expression, kind)`` for the gate receiver, or ``(None, None)``.

    ``kind`` is "tx" (has begin/end) or "wal" (append-only log).
    """
    params = _param_names(func)
    local = _self_attr_names(func)
    inherited = _class_attr_names(class_node)

    name = _pick(params, _TX_NAMES)
    if name is None:
        name = _pick(params, _ACCESSOR_NAMES)
    if name is not None:
        return name, "tx"
    for scope in (local, inherited):
        name = _pick(scope, _TX_NAMES) or _pick(scope, _ACCESSOR_NAMES)
        if name is not None:
            return "self." + name, "tx"
    name = _pick(params, _GATE_LOG_RECEIVERS)
    if name is not None:
        return name, "wal"
    for scope in (local, inherited):
        name = _pick(scope, _GATE_LOG_RECEIVERS)
        if name is not None:
            return "self." + name, "wal"
    return None, None


# -- edit planning -----------------------------------------------------------


def _region_has_multiline_string(region):
    """True when re-indenting the region's lines could corrupt a
    multi-line string literal."""
    for stmt in region.statements:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Constant) and isinstance(node.value, str) \
                    and getattr(node, "end_lineno", node.lineno) != node.lineno:
                return True
    return False


def _tx_edits(region, cfg, receiver, lines):
    edits = []
    open_line = region.first.lineno
    indent = indent_of(lines[open_line - 1])
    edits.append(Insertion(open_line, [indent + receiver + ".begin()"]))
    if not placement.fallthrough_close_covers(cfg, region):
        for ret in region.returns():
            ret_indent = indent_of(lines[ret.lineno - 1])
            edits.append(Insertion(ret.lineno,
                                   [ret_indent + receiver + ".end()"]))
    if not isinstance(region.last, ast.Return):
        edits.append(Insertion(region.last.end_lineno + 1,
                               [indent + receiver + ".end()"]))
    return edits


def _with_edits(region, receiver, lines):
    open_line = region.first.lineno
    last_line = region.last.end_lineno
    indent = indent_of(lines[open_line - 1])
    return [
        Insertion(open_line, [indent + "with %s.transaction():" % receiver]),
        Indentation(open_line, last_line),
    ]


def _wal_edits(region, receiver, source, lines):
    """One append per store, above the storing statement."""
    edits = []
    stmt_line = region.first.lineno
    indent = indent_of(lines[stmt_line - 1])
    for order, call in enumerate(
            sorted(region.stores,
                   key=lambda c: (c.lineno, c.col_offset))):
        segments = []
        for arg in call.args[:2]:
            segment = ast.get_source_segment(source, arg)
            if segment is None or "\n" in segment:
                segment = "0"
            segments.append(segment)
        while len(segments) < 2:
            segments.append("0")
        edits.append(Insertion(
            stmt_line,
            ["%s%s.append(%s, %s)" % (indent, receiver,
                                      segments[0], segments[1])],
            order=order))
    return edits


def _plan_file_edits(tree, source, style, per_store):
    """``(edits, gates, unfixable)`` for one parsed source."""
    lines = source.splitlines()
    edits = []
    gates = 0
    unfixable = []
    for func, owner in _functions_with_owner(tree):
        receiver, kind = _resolve_receiver(func, owner)
        use_wal = kind == "wal" or style == "wal"
        regions, unplaced, cfg = placement.plan_function(
            func, per_store=per_store or use_wal)
        for call in unplaced:
            unfixable.append((call.lineno, call.col_offset,
                              "store outside any statement body"))
        if not regions:
            continue
        if receiver is None:
            for region in regions:
                unfixable.extend(
                    (call.lineno, call.col_offset,
                     "no tx/accessor/wal receiver reachable from %r"
                     % func.name)
                    for call in region.stores)
            continue
        for region in regions:
            if use_wal:
                if kind != "wal" and style == "wal":
                    # Forced WAL style but only a tx receiver: the
                    # receiver cannot append; fall back to tx gates.
                    edits.extend(_tx_edits(region, cfg, receiver, lines))
                else:
                    edits.extend(_wal_edits(region, receiver, source, lines))
            elif style == "with" \
                    and not _region_has_multiline_string(region):
                edits.extend(_with_edits(region, receiver, lines))
            else:
                edits.extend(_tx_edits(region, cfg, receiver, lines))
            gates += 1
    return edits, gates, unfixable


def fix_source(path, source, style="auto", max_rounds=MAX_ROUNDS):
    """Insert persist gates until the checker is clean; returns
    ``(new_source, FixReport)``.

    Raises :class:`LintError` on unparseable input (including a round
    whose own edits fail to parse, which would indicate a rewriter
    bug — edits are never kept in that case).
    """
    if style not in FIX_STYLES:
        raise LintError("unknown fix style %r (have %s)"
                        % (style, ", ".join(FIX_STYLES)))
    report = FixReport(path)
    current = source
    for round_index in range(max_rounds):
        try:
            tree = ast.parse(current, filename=path)
        except SyntaxError as exc:
            raise LintError("%s:%s: cannot fix unparseable source: %s"
                            % (path, exc.lineno or 1, exc.msg))
        per_store = round_index >= 2
        edits, gates, unfixable = _plan_file_edits(
            tree, current, style, per_store)
        if not edits:
            report.unfixable = unfixable
            break
        candidate = apply_edits(current, edits)
        try:
            ast.parse(candidate, filename=path)
        except SyntaxError as exc:
            raise LintError("%s: fixer produced unparseable output at "
                            "line %s: %s" % (path, exc.lineno, exc.msg))
        current = candidate
        report.rounds = round_index + 1
        report.gates += gates

    # Final re-check: anything still uncovered is unfixable by this
    # pass (and proves the fixed source is a fixed point).
    tree = ast.parse(current, filename=path)
    remaining = []
    for func, _owner in _functions_with_owner(tree):
        calls, _cfg = placement.uncovered_stores(func)
        remaining.extend(calls)
    if remaining:
        known = {(lineno, col) for lineno, col, _ in report.unfixable}
        for call in remaining:
            if (call.lineno, call.col_offset) not in known:
                report.unfixable.append(
                    (call.lineno, call.col_offset,
                     "store still uncovered after %d round(s)"
                     % max(report.rounds, 1)))
    report.unfixable.sort()
    report.changed = current != source
    return current, report


# -- CLI driver --------------------------------------------------------------


def fix_paths(paths, style="auto", diff_only=False, baseline=None,
              stream=None):
    """Fix every file under ``paths`` with new persist-order findings.

    Files whose findings are all baseline-accepted are skipped — the
    baseline records *intentionally* ungated code (volatile structures)
    that must not be instrumented in place. Returns the exit code:
    0 all findings fixed (diffs printed or files rewritten), 1 some
    store was unfixable, honoring the shared lint exit contract.
    """
    import sys

    from repro.lint.engine import iter_python_files
    from repro.staticcheck.engine import check_source

    out = stream or sys.stdout
    exit_code = 0
    fixed_files = 0
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        findings = check_source(filename, source, selected=["persist-order"])
        if baseline is not None:
            findings, _accepted = baseline.apply(findings)
        if any(f.rule_id == "parse-error" for f in findings):
            print("staticcheck: %s: cannot fix, parse error" % filename,
                  file=sys.stderr)
            exit_code = 1
            continue
        if not findings:
            continue
        fixed, report = fix_source(filename, source, style=style)
        for lineno, col, reason in report.unfixable:
            print("%s:%d:%d: unfixable persist-order finding: %s"
                  % (filename, lineno, col, reason), file=sys.stderr)
            exit_code = 1
        if not report.changed:
            continue
        if diff_only:
            out.write(unified_diff(source, fixed, filename))
        else:
            with open(filename, "w", encoding="utf-8") as handle:
                handle.write(fixed)
            print("staticcheck: %s: inserted %d gate site(s) in %d "
                  "round(s)" % (filename, report.gates, report.rounds),
                  file=sys.stderr)
        fixed_files += 1
    if not diff_only and fixed_files == 0 and exit_code == 0:
        print("staticcheck: nothing to fix", file=sys.stderr)
    return exit_code
