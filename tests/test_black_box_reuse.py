"""The paper's central claim: unmodified volatile structure code runs on
every persistence regime.

One workload, one structure implementation, seven accessor/machine
bindings — identical results everywhere. This is the reproduction of
"Black-Box Code Reuse" (paper §1) in a form a test can assert.
"""

import pytest

from repro.baselines import make_backend
from repro.libpax.allocator import PmAllocator
from repro.mem.accessor import CountingAccessor, OffsetAccessor, RawAccessor
from repro.mem.address_space import AddressSpace
from repro.mem.physical import MemoryDevice
from repro.structures import BTree, HashMap, PersistentList, PersistentVector
from tests.conftest import small_cache_kwargs

ALL_BACKENDS = ["dram", "pm_direct", "pmdk", "redo", "compiler",
                "mprotect", "pax"]


def build(name):
    kwargs = dict(heap_size=4 * 1024 * 1024, capacity=64)
    if name == "pax":
        kwargs = dict(pool_size=4 * 1024 * 1024, log_size=256 * 1024,
                      capacity=64)
    kwargs.update(small_cache_kwargs())
    return make_backend(name, **kwargs)


def reference_result(ops):
    model = {}
    for kind, key, value in ops:
        if kind == "put":
            model[key] = value
        else:
            model.pop(key, None)
    return model


WORKLOAD = ([("put", key, key * 3) for key in range(120)]
            + [("remove", key, 0) for key in range(0, 120, 5)]
            + [("put", key, key + 1) for key in range(60, 180)])


class TestSameCodeEveryBackend:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_identical_results(self, name):
        backend = build(name)
        for kind, key, value in WORKLOAD:
            if kind == "put":
                backend.put(key, value)
            else:
                backend.remove(key)
        backend.persist()
        assert backend.to_dict() == reference_result(WORKLOAD)

    def test_structure_class_is_shared(self):
        # All backends literally bind the same class object.
        backends = [build(name) for name in ("dram", "pmdk", "pax")]
        classes = {type(backend._map) for backend in backends}
        assert classes == {HashMap}


class TestEveryStructureOnPlainMemory:
    """The structures never import anything persistence-related."""

    def _mem(self):
        space = AddressSpace()
        space.map_device(4096, MemoryDevice("m", 1 << 20))
        mem = OffsetAccessor(RawAccessor(space), 4096)
        return mem, PmAllocator.create(mem, 1 << 20)

    def test_all_four_structures_coexist(self):
        mem, alloc = self._mem()
        table = HashMap.create(mem, alloc, capacity=16)
        vector = PersistentVector.create(mem, alloc)
        linked = PersistentList.create(mem, alloc)
        tree = BTree.create(mem, alloc)
        for value in range(40):
            table.put(value, value)
            vector.append(value)
            linked.push_back(value)
            tree.put(value, value)
        assert len(table) == len(vector) == len(linked) == len(tree) == 40
        assert table.to_dict() == tree.to_dict()
        assert vector.to_list() == linked.to_list()

    def test_no_persistence_imports_in_structures(self):
        import repro.structures.btree
        import repro.structures.hashmap
        import repro.structures.linkedlist
        import repro.structures.vector
        for module in (repro.structures.hashmap, repro.structures.vector,
                       repro.structures.linkedlist, repro.structures.btree):
            source = open(module.__file__).read()
            for forbidden in ("repro.pm", "repro.core", "repro.cxl",
                              "repro.libpax", "clwb", "sfence", "persist()"):
                assert forbidden not in source, (
                    "%s knows about persistence (%r)" % (module.__name__,
                                                         forbidden))


class TestAccessObservability:
    """Every structure access is observable — the Pin-replacement claim."""

    def test_counting_accessor_sees_all_traffic(self):
        space = AddressSpace()
        space.map_device(4096, MemoryDevice("m", 1 << 20))
        counting = CountingAccessor(OffsetAccessor(RawAccessor(space), 4096))
        alloc = PmAllocator.create(counting, 1 << 20)
        table = HashMap.create(counting, alloc, capacity=16)
        stores_before = counting.stores
        table.put(1, 2)
        assert counting.stores > stores_before
        loads_before = counting.loads
        table.get(1)
        assert counting.loads > loads_before
        assert counting.stores == stores_before + (counting.stores - stores_before)
