# Developer entry points. Everything is pure Python; no build step.

PYTHON ?= python

.PHONY: install test bench examples quicktest fuzz fuzz-smoke clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

quicktest:
	$(PYTHON) -m pytest tests/ -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Crash-consistency fuzzing (crash point x fault plan x structure); see
# docs/faults.md. `fuzz` is the full seeded sweep, `fuzz-smoke` a fast
# fixed-seed subset suitable for CI.
fuzz:
	PYTHONPATH=src $(PYTHON) -m repro.crashtest.fuzz --iterations 500 --seed 1234

fuzz-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.crashtest.fuzz --iterations 50 --seed 7 --progress 0

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis examples/ht.pool
	find . -name __pycache__ -type d -exec rm -rf {} +
