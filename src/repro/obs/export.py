"""Trace exporters: JSONL event logs and Chrome ``trace_event`` JSON.

Two on-disk formats, one source of truth:

* **JSONL** — one JSON object per line, first line a schema header
  (:data:`TRACE_SCHEMA`). Greppable, streamable, diff-friendly; what
  ``--trace`` flags write and what the CLI subcommands read.
* **Chrome trace JSON** — the ``trace_event`` "JSON Object Format"
  (``{"traceEvents": [...]}``) that chrome://tracing and Perfetto load
  directly. Simulated nanoseconds map onto the format's microsecond
  ``ts``/``dur`` fields; each event category gets its own named track
  so a persist epoch reads as parallel lanes of load/store/snoop/drain
  activity.

:func:`validate_chrome_trace` is the schema check CI runs on exported
traces — deliberately strict about the few fields Perfetto actually
keys on (``ph``, ``ts``, ``dur``, ``pid``/``tid``).
"""

import json

from repro.errors import ConfigError
from repro.obs.tracer import CATEGORIES, EVENT_INSTANT, EVENT_SPAN

#: JSONL header schema identifier, bumped on incompatible changes.
TRACE_SCHEMA = "repro.obs/1"

#: Chrome trace_event phases this exporter emits (plus "M" metadata).
_CHROME_PHASES = frozenset({EVENT_SPAN, EVENT_INSTANT, "M"})


def event_to_dict(event, extra=None):
    """Convert one tracer tuple into its JSONL record."""
    ph, category, name, ts_ns, dur_ns, args = event
    record = {"ph": ph, "cat": category, "name": name, "ts_ns": ts_ns}
    if dur_ns:
        record["dur_ns"] = dur_ns
    if args:
        record["args"] = args
    if extra:
        record.update(extra)
    return record


def write_jsonl(events, handle_or_path, extra=None, header=True):
    """Write events (tracer tuples or dicts) as JSONL.

    ``extra`` is merged into every record — callers use it to tag events
    with the perfbench cell or fuzz iteration they came from. Pass an
    open file handle to append several event batches under one header.
    """
    own = isinstance(handle_or_path, str)
    handle = open(handle_or_path, "w") if own else handle_or_path
    try:
        if header:
            handle.write(json.dumps({"schema": TRACE_SCHEMA}) + "\n")
        for event in events:
            if isinstance(event, dict):
                record = dict(event)
                if extra:
                    record.update(extra)
            else:
                record = event_to_dict(event, extra=extra)
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    finally:
        if own:
            handle.close()


def read_jsonl(path):
    """Read a JSONL trace; returns a list of event dicts.

    Raises :class:`~repro.errors.ConfigError` on a missing or mismatched
    schema header or an unparseable line — the CLI maps that onto exit
    code 1.
    """
    with open(path) as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise ConfigError("%s is empty, not a %s trace" % (path, TRACE_SCHEMA))
    try:
        header = json.loads(lines[0])
    except ValueError:
        raise ConfigError("%s line 1 is not JSON" % path) from None
    if not isinstance(header, dict) or header.get("schema") != TRACE_SCHEMA:
        raise ConfigError("%s is not a %s trace (header %r)"
                          % (path, TRACE_SCHEMA, lines[0][:80]))
    events = []
    for index, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            raise ConfigError("%s line %d is not JSON" % (path, index)) \
                from None
        if not isinstance(record, dict) or "ph" not in record \
                or "ts_ns" not in record:
            raise ConfigError("%s line %d is not a trace event" % (path, index))
        events.append(record)
    return events


def chrome_trace(event_dicts):
    """Build a Chrome ``trace_event`` JSON object from event dicts.

    Categories become named tracks (``tid`` per category, announced via
    ``thread_name`` metadata events) under one process, so Perfetto
    renders the epoch as parallel lanes. ``ts``/``dur`` are microsecond
    floats per the format; the original integer ``ts_ns`` survives in
    ``args`` for lossless round-trips.
    """
    tids = {category: index for index, category in enumerate(CATEGORIES)}
    trace_events = []
    for category, tid in tids.items():
        trace_events.append({
            "ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
            "args": {"name": category},
        })
    for record in event_dicts:
        category = record.get("cat", "misc")
        tid = tids.setdefault(category, len(tids))
        event = {
            "ph": record["ph"],
            "name": record.get("name", category),
            "cat": category,
            "pid": 0,
            "tid": tid,
            "ts": record["ts_ns"] / 1e3,
        }
        args = dict(record.get("args") or {})
        args["ts_ns"] = record["ts_ns"]
        if record["ph"] == EVENT_SPAN:
            event["dur"] = record.get("dur_ns", 0) / 1e3
        else:
            event["s"] = "t"      # instant scoped to its track
        event["args"] = args
        trace_events.append(event)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"schema": TRACE_SCHEMA},
    }


def write_chrome_trace(event_dicts, path):
    """Write :func:`chrome_trace` output as a JSON file."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(event_dicts), handle, indent=1)
        handle.write("\n")


def validate_chrome_trace(obj):
    """Schema-check a Chrome trace object; returns a list of problems.

    An empty list means the trace is loadable. Checks the JSON Object
    Format contract: a ``traceEvents`` list whose members carry ``ph``,
    ``name``, numeric ``ts``, ``pid``/``tid``, and — for complete
    ("X") events — a non-negative numeric ``dur``.
    """
    problems = []
    if not isinstance(obj, dict):
        return ["top level must be a JSON object, got %s"
                % type(obj).__name__]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = "traceEvents[%d]" % index
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        ph = event.get("ph")
        if ph not in _CHROME_PHASES:
            problems.append("%s: unsupported phase %r" % (where, ph))
            continue
        if not isinstance(event.get("name"), str):
            problems.append("%s: missing string name" % where)
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append("%s: missing integer %s" % (where, field))
        if ph == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            problems.append("%s: missing numeric ts" % where)
        if ph == EVENT_SPAN:
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append("%s: X event needs non-negative dur" % where)
    return problems
