"""A PM device that can tear writes and flip bits.

:class:`FaultyPmDevice` behaves exactly like
:class:`~repro.pm.device.PmDevice` until asked to misbehave. It keeps a
short journal of recent writes (offset, pre-image, payload); at crash
time the fault injector *tears* the most recent one — rewriting the
medium so only a prefix of the payload survived, the rest reverting to
the pre-image. That models a 64-byte (or larger, e.g. a 96-byte undo
entry spanning 1.5 lines) store cut by power failure.

Bit flips model media faults between crash and recovery: raw ``_data``
mutation, deliberately bypassing the write path so wear accounting and
write statistics don't register phantom writes.
"""

from collections import deque

from repro.errors import ConfigError
from repro.pm.device import PmDevice


class FaultyPmDevice(PmDevice):
    """PM with a write journal enabling torn-write and bit-flip faults."""

    KIND = "pm-faulty"

    def __init__(self, name, size, backing_path=None, journal_depth=8):
        super().__init__(name, size, backing_path=backing_path)
        if journal_depth < 1:
            raise ConfigError("journal depth must be at least 1")
        self._journal = deque(maxlen=journal_depth)

    def write(self, offset, data):
        data = bytes(data)
        if data:
            old = bytes(self._data[offset:offset + len(data)])
            # A write that changes nothing (e.g. the log's tail poison
            # over already-zero bytes) cannot tear observably; journal
            # only writes whose interruption the medium could witness.
            if data != old:
                self._journal.append((offset, old, data))
        super().write(offset, data)

    @property
    def last_write(self):
        """``(offset, pre_image, payload)`` of the most recent write."""
        return self._journal[-1] if self._journal else None

    def tear_last_write(self, keep_bytes):
        """Un-persist the suffix of the most recent write.

        After this, the medium holds ``keep_bytes`` of the write's
        payload followed by the pre-image — what PM would contain had
        power failed ``keep_bytes`` into the store. Returns
        ``(offset, keep_bytes, total_bytes)`` or None if no write is
        journalled. ``keep_bytes`` is clamped to the payload length.
        """
        if not self._journal:
            return None
        offset, old, new = self._journal[-1]
        keep = max(0, min(keep_bytes, len(new)))
        self._data[offset:offset + len(new)] = new[:keep] + old[keep:]
        self.stats.counter("writes_torn").add(1)
        return offset, keep, len(new)

    def flip_bit(self, offset, bit_index):
        """Flip one bit: media fault, invisible to write accounting."""
        byte_offset = offset + bit_index // 8
        self._check_range(byte_offset, 1)
        self._data[byte_offset] ^= 1 << (bit_index % 8)
        self.stats.counter("bits_flipped").add(1)

    def flip_random_bits(self, offset, length, count, rng):
        """Flip ``count`` random bits inside ``[offset, offset+length)``."""
        self._check_range(offset, length)
        for _ in range(count):
            self.flip_bit(offset, rng.randint(0, length * 8 - 1))

    def clear_journal(self):
        """Forget journalled writes (e.g. after recovery completes)."""
        self._journal.clear()
