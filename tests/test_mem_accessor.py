"""Typed accessors: integer helpers, offset views, counting."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.accessor import (
    CountingAccessor,
    OffsetAccessor,
    RawAccessor,
)
from repro.mem.address_space import AddressSpace
from repro.mem.physical import MemoryDevice


def raw_accessor():
    space = AddressSpace()
    space.map_device(0x10000, MemoryDevice("m", 64 * 1024))
    return RawAccessor(space)


class TestTypedHelpers:
    def test_u8(self):
        mem = raw_accessor()
        mem.write_u8(0x10000, 0x7F)
        assert mem.read_u8(0x10000) == 0x7F

    def test_u16_endianness(self):
        mem = raw_accessor()
        mem.write_u16(0x10000, 0x1234)
        assert mem.read(0x10000, 2) == b"\x34\x12"

    def test_u32(self):
        mem = raw_accessor()
        mem.write_u32(0x10000, 0xDEADBEEF)
        assert mem.read_u32(0x10000) == 0xDEADBEEF

    def test_u64(self):
        mem = raw_accessor()
        mem.write_u64(0x10000, 2**64 - 1)
        assert mem.read_u64(0x10000) == 2**64 - 1

    def test_u64_truncates_overflow(self):
        mem = raw_accessor()
        mem.write_u64(0x10000, 2**64 + 5)
        assert mem.read_u64(0x10000) == 5

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_u64_roundtrip(self, value):
        mem = raw_accessor()
        mem.write_u64(0x10040, value)
        assert mem.read_u64(0x10040) == value

    def test_memset(self):
        mem = raw_accessor()
        mem.memset(0x10000, 16, 0xCC)
        assert mem.read(0x10000, 16) == b"\xcc" * 16

    def test_memcpy(self):
        mem = raw_accessor()
        mem.write(0x10000, b"payload!")
        mem.memcpy(0x10100, 0x10000, 8)
        assert mem.read(0x10100, 8) == b"payload!"


class TestOffsetAccessor:
    def test_translation(self):
        inner = raw_accessor()
        view = OffsetAccessor(inner, 0x10000)
        view.write_u64(0, 42)
        assert inner.read_u64(0x10000) == 42
        assert view.read_u64(0) == 42

    def test_nested_offsets(self):
        inner = raw_accessor()
        outer = OffsetAccessor(OffsetAccessor(inner, 0x10000), 0x100)
        outer.write(0, b"hi")
        assert inner.read(0x10100, 2) == b"hi"


class TestCountingAccessor:
    def test_counts(self):
        counting = CountingAccessor(raw_accessor())
        counting.write(0x10000, b"abcd")
        counting.read(0x10000, 4)
        counting.read(0x10000, 2)
        assert counting.stores == 1
        assert counting.loads == 2
        assert counting.bytes_stored == 4
        assert counting.bytes_loaded == 6
