#!/usr/bin/env python3
"""Quickstart: the paper's Listing 1, line for line.

Creates (or reopens) a pool file, turns an ordinary hash map into a
persistent one, mutates it, and commits a crash-consistent snapshot.
Run it twice: the second run recovers the data the first one persisted.

    $ python examples/quickstart.py
    $ python examples/quickstart.py     # picks up where it left off
"""

import os

from repro import HashMap, map_pool

POOL_PATH = os.path.join(os.path.dirname(__file__), "ht.pool")


def main():
    # 1: map the pool (vPM) into our "address space"; recovery runs here
    #    if an earlier crash left an uncommitted epoch.
    pool = map_pool(POOL_PATH, pool_size=8 * 1024 * 1024,
                    log_size=512 * 1024)

    # 2: construct-or-recover the persistent hash map. Unmodified
    #    volatile structure code; only the allocator/accessor differ.
    ht = pool.persistent(HashMap, capacity=64)
    runs = ht.get(0xC0FFEE, default=0)
    print("This pool has been opened %d time(s) before." % runs)

    # 3-5: ordinary operations — loads and stores through CPU caches; the
    #      PAX device undo-logs asynchronously, never stalling us.
    ht.put(1, 100)
    print("Key 1 =", ht.get(1))
    ht.put(2, 200)
    ht.put(0xC0FFEE, runs + 1)

    # 6: group-commit a crash-consistent snapshot.
    latency_ns = pool.persist()
    print("persist() committed epoch %d in %.1f simulated us"
          % (pool.committed_epoch, latency_ns / 1e3))

    print("map contents:", {k: v for k, v in sorted(ht.items())[:5]})

    # Bonus: re-run a few operations under the structured tracer to see
    # what the machine did in simulated time (docs/observability.md).
    # Attaching a tracer never changes simulated behaviour — only what
    # you can observe of it.
    from repro.obs import ObsTracer
    tracer = ObsTracer().attach(pool.machine)
    ht.put(3, 300)
    pool.persist()
    print("traced events by category:", tracer.counts_by_category())

    pool.close()        # flush the pool file to disk


if __name__ == "__main__":
    main()
