"""Command line interface for ``python -m repro.obs``.

Subcommands:

* ``summarize TRACE`` — per-category event counts and span-latency
  percentiles (simulated ns), plus the epoch-commit timeline.
* ``convert TRACE --to chrome -o OUT`` — re-export a JSONL trace as
  Chrome ``trace_event`` JSON for chrome://tracing / Perfetto.
* ``validate PATH`` — schema-check a trace file (JSONL or Chrome JSON);
  what CI runs on every exported artifact.
* ``overhead`` — measure what tracing costs: runs the perfbench
  store-heavy microworkload untraced, with a disabled tracer attached,
  and recording, then asserts the disabled-tracer regime stays within
  tolerance of untraced and that simulated time is identical across all
  three (the "tracing never perturbs the simulation" guarantee).

Exit codes follow the repro CLI contract shared with ``repro.lint`` and
``repro.staticcheck``: 0 success, 1 findings/failures, 2 usage or I/O
errors surfaced as :class:`~repro.errors.ConfigError`.
"""

import argparse
import json
import sys

from repro.errors import ConfigError
from repro.obs.export import (read_jsonl, validate_chrome_trace,
                              write_chrome_trace, write_jsonl)
from repro.obs.tracer import DEFAULT_CAPACITY, EVENT_SPAN, ObsTracer

#: Percentiles printed per category by ``summarize``.
_PERCENTILES = (50.0, 99.0)

#: Epoch-commit timeline rows printed before truncation.
_TIMELINE_LIMIT = 24


def _percentile(ordered, p):
    """Linear-interpolated percentile of a sorted list (0..100)."""
    if not ordered:
        return 0.0
    if p <= 0:
        return float(ordered[0])
    if p >= 100:
        return float(ordered[-1])
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = lo + (rank > lo)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def summarize_events(events):
    """Aggregate event dicts; returns the summary structure.

    ``categories`` maps category -> {events, spans, and (when spans
    exist) p50/p99/max/total of span ``dur_ns``}; ``epochs`` is the
    commit timeline (ts_ns-ordered ``epoch-commit`` events).
    """
    categories = {}
    epochs = []
    for record in events:
        category = record.get("cat", "misc")
        bucket = categories.setdefault(
            category, {"events": 0, "spans": 0, "durations": []})
        bucket["events"] += 1
        if record.get("ph") == EVENT_SPAN:
            bucket["spans"] += 1
            bucket["durations"].append(record.get("dur_ns", 0))
        if category == "epoch-commit":
            epochs.append(record)
    for bucket in categories.values():
        durations = sorted(bucket.pop("durations"))
        if durations:
            for p in _PERCENTILES:
                bucket["p%g_ns" % p] = round(_percentile(durations, p), 1)
            bucket["max_ns"] = durations[-1]
            bucket["total_ns"] = sum(durations)
    epochs.sort(key=lambda record: (record.get("ts_ns", 0),
                                    record.get("name", "")))
    return {"events": len(events), "categories": categories,
            "epochs": epochs}


def _print_summary(summary, out):
    out.write("%d events\n\n" % summary["events"])
    header = "%-14s %8s %8s %12s %12s %12s" % (
        "category", "events", "spans", "p50(ns)", "p99(ns)", "max(ns)")
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for category in sorted(summary["categories"]):
        bucket = summary["categories"][category]
        if bucket["spans"]:
            out.write("%-14s %8d %8d %12.1f %12.1f %12d\n" % (
                category, bucket["events"], bucket["spans"],
                bucket["p50_ns"], bucket["p99_ns"], bucket["max_ns"]))
        else:
            out.write("%-14s %8d %8d %12s %12s %12s\n" % (
                category, bucket["events"], bucket["spans"],
                "-", "-", "-"))
    epochs = summary["epochs"]
    out.write("\nepoch-commit timeline (%d events" % len(epochs))
    if len(epochs) > _TIMELINE_LIMIT:
        out.write(", last %d shown" % _TIMELINE_LIMIT)
    out.write("):\n")
    for record in epochs[-_TIMELINE_LIMIT:]:
        args = record.get("args") or {}
        detail = " ".join("%s=%s" % (key, args[key]) for key in sorted(args)
                          if key != "ts_ns")
        cell = record.get("cell")
        if cell:
            detail = ("cell=%s " % cell) + detail
        out.write("  %12d ns  %-14s %s\n"
                  % (record.get("ts_ns", 0), record.get("name", "?"),
                     detail.strip()))


def _cmd_summarize(options):
    events = read_jsonl(options.trace)
    summary = summarize_events(events)
    if options.json:
        json.dump(summary, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        _print_summary(summary, sys.stdout)
    return 0


def _cmd_convert(options):
    events = read_jsonl(options.trace)
    if options.to == "chrome":
        write_chrome_trace(events, options.output)
    else:                                     # normalized JSONL re-dump
        write_jsonl(events, options.output)
    sys.stdout.write("wrote %s (%d events)\n" % (options.output, len(events)))
    return 0


def _cmd_validate(options):
    path = options.path
    if path.endswith((".jsonl", ".ndjson")):
        events = read_jsonl(path)             # raises ConfigError -> exit 2
        sys.stdout.write("%s: valid %d-event JSONL trace\n"
                         % (path, len(events)))
        return 0
    try:
        with open(path) as handle:
            obj = json.load(handle)
    except ValueError:
        raise ConfigError("%s is not JSON" % path) from None
    problems = validate_chrome_trace(obj)
    for problem in problems:
        sys.stdout.write("%s: %s\n" % (path, problem))
    if problems:
        return 1
    sys.stdout.write("%s: valid Chrome trace (%d events)\n"
                     % (path, len(obj["traceEvents"])))
    return 0


def _cmd_overhead(options):
    from repro.perfbench import run_cell

    def measure(tracer):
        return run_cell(options.workload, options.backend, ops=options.ops,
                        records=options.records, seed=options.seed,
                        repeats=options.repeats, tracer=tracer)

    untraced = measure(None)
    muted_tracer = ObsTracer(capacity=options.capacity)
    muted_tracer.enabled = False
    muted = measure(muted_tracer)
    recording = measure(ObsTracer(capacity=options.capacity))

    sys.stdout.write(
        "%s/%s ops=%d repeats=%d\n"
        % (options.workload, options.backend, options.ops, options.repeats))
    rows = (("untraced", untraced), ("tracer-disabled", muted),
            ("recording", recording))
    for label, cell in rows:
        sys.stdout.write("  %-16s %10.0f ops/s  sim_ns=%d\n"
                         % (label, cell["ops_per_sec"], cell["sim_ns"]))

    failures = []
    for label, cell in rows[1:]:
        if cell["sim_ns"] != untraced["sim_ns"]:
            failures.append(
                "%s changed simulated time: %d != %d ns — tracing perturbed "
                "the simulation" % (label, cell["sim_ns"],
                                    untraced["sim_ns"]))
    floor = untraced["ops_per_sec"] * (1.0 - options.tolerance)
    if muted["ops_per_sec"] < floor:
        overhead = 1.0 - muted["ops_per_sec"] / untraced["ops_per_sec"]
        failures.append(
            "tracer-disabled overhead %.1f%% exceeds %.0f%% budget "
            "(%.0f ops/s vs untraced %.0f)"
            % (overhead * 100, options.tolerance * 100,
               muted["ops_per_sec"], untraced["ops_per_sec"]))
    for failure in failures:
        sys.stdout.write("FAIL: %s\n" % failure)
    if not failures:
        sys.stdout.write("OK: tracer-disabled within %.0f%% of untraced, "
                         "sim_ns identical across all regimes\n"
                         % (options.tolerance * 100))
    return 1 if failures else 0


def build_parser():
    """Build the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect, convert, and validate repro.obs traces.")
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser(
        "summarize", help="per-category latency percentiles + epoch timeline")
    summarize.add_argument("trace", help="JSONL trace written by --trace")
    summarize.add_argument("--json", action="store_true",
                           help="emit the summary as JSON")
    summarize.set_defaults(func=_cmd_summarize)

    convert = commands.add_parser(
        "convert", help="re-export a JSONL trace in another format")
    convert.add_argument("trace", help="JSONL trace written by --trace")
    convert.add_argument("--to", choices=("chrome", "jsonl"),
                         default="chrome", help="output format")
    convert.add_argument("-o", "--output", required=True,
                         help="output path")
    convert.set_defaults(func=_cmd_convert)

    validate = commands.add_parser(
        "validate", help="schema-check a trace file (JSONL or Chrome JSON)")
    validate.add_argument("path", help="trace file to check")
    validate.set_defaults(func=_cmd_validate)

    overhead = commands.add_parser(
        "overhead",
        help="assert tracing overhead and determinism guarantees")
    overhead.add_argument("--workload", default="store_heavy")
    overhead.add_argument("--backend", default="pax")
    overhead.add_argument("--ops", type=int, default=8000)
    overhead.add_argument("--records", type=int, default=1000)
    overhead.add_argument("--seed", type=int, default=42)
    overhead.add_argument("--repeats", type=int, default=5,
                          help="best-of-N wall-clock per regime")
    overhead.add_argument("--tolerance", type=float, default=0.05,
                          help="allowed tracer-disabled slowdown (fraction)")
    overhead.add_argument("--capacity", type=int, default=DEFAULT_CAPACITY)
    overhead.set_defaults(func=_cmd_overhead)
    return parser


def main(argv=None):
    """Entry point; returns the exit code."""
    parser = build_parser()
    options = parser.parse_args(argv)
    try:
        return options.func(options)
    except (ConfigError, OSError) as error:
        sys.stderr.write("error: %s\n" % error)
        return 2
