"""The coherence directory (host cache home agent's snoop filter).

Tracks, for every line that any core's private caches hold, which cores
hold it and in which MESI state. Invariants enforced:

* at most one core holds M or E, and then no other core holds the line;
* device-homed lines are never granted E (the PAX device must observe the
  first store to every line, so silent E->M upgrades are forbidden for
  vPM — see DESIGN.md and paper §3.2/§4).

The directory is *precise*: private-cache evictions always notify it.
"""

from repro.cache.line import MesiState
from repro.errors import ProtocolError
from repro.util.stats import StatGroup


class DirectoryEntry:
    """Sharer/owner bookkeeping for one line."""

    __slots__ = ("states",)

    def __init__(self):
        self.states = {}

    @property
    def owner(self):
        """The core holding M or E, or None."""
        for core, state in self.states.items():
            if state in MesiState.WRITABLE:
                return core
        return None

    def sharers(self):
        """Cores holding the line in any valid state."""
        return list(self.states)


class Directory:
    """Maps line address -> :class:`DirectoryEntry`."""

    def __init__(self):
        self._entries = {}
        self.stats = StatGroup("directory")

    def state(self, line_addr, core):
        """MESI state of ``core`` for ``line_addr`` (I if untracked)."""
        entry = self._entries.get(line_addr)
        if entry is None:
            return MesiState.INVALID
        return entry.states.get(core, MesiState.INVALID)

    def entry(self, line_addr):
        """Return the entry, or None if no core holds the line."""
        return self._entries.get(line_addr)

    def set_state(self, line_addr, core, state):
        """Record ``core`` holding ``line_addr`` in ``state``."""
        if state == MesiState.INVALID:
            self.drop(line_addr, core)
            return
        entry = self._entries.setdefault(line_addr, DirectoryEntry())
        if state in MesiState.WRITABLE:
            others = [c for c in entry.states if c != core]
            if others:
                raise ProtocolError(
                    "grant of %s on 0x%x while cores %r still hold it"
                    % (state, line_addr, others))
        else:
            owner = entry.owner
            if owner is not None and owner != core:
                raise ProtocolError(
                    "grant of S on 0x%x while core %d holds %s"
                    % (line_addr, owner, entry.states[owner]))
        entry.states[core] = state

    def drop(self, line_addr, core):
        """Remove ``core`` from the sharer set (private-cache eviction)."""
        entry = self._entries.get(line_addr)
        if entry is None:
            return
        entry.states.pop(core, None)
        if not entry.states:
            del self._entries[line_addr]

    def owner(self, line_addr):
        """Core holding M/E, or None."""
        entry = self._entries.get(line_addr)
        return entry.owner if entry is not None else None

    def sharers(self, line_addr):
        """All cores holding the line."""
        entry = self._entries.get(line_addr)
        return entry.sharers() if entry is not None else []

    def lines_held(self):
        """All tracked line addresses."""
        return list(self._entries)

    def clear(self):
        """Forget everything (crash)."""
        self._entries.clear()

    def __len__(self):
        return len(self._entries)
