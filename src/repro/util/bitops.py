"""Alignment and address-range helpers.

All the simulators in this package slice byte ranges into cache lines or
pages. The helpers here centralize that arithmetic so off-by-one errors
live in exactly one place.
"""

from repro.errors import AddressError
from repro.util.constants import CACHE_LINE_SIZE, PAGE_SIZE, is_power_of_two


def align_down(value, alignment):
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise AddressError("alignment must be a power of two, got %r" % (alignment,))
    return value & ~(alignment - 1)


def align_up(value, alignment):
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise AddressError("alignment must be a power of two, got %r" % (alignment,))
    return (value + alignment - 1) & ~(alignment - 1)


def is_aligned(value, alignment):
    """Return True if ``value`` is a multiple of ``alignment``."""
    if not is_power_of_two(alignment):
        raise AddressError("alignment must be a power of two, got %r" % (alignment,))
    return (value & (alignment - 1)) == 0


def line_base(addr):
    """Return the base address of the cache line containing ``addr``."""
    return align_down(addr, CACHE_LINE_SIZE)


def line_offset(addr):
    """Return the offset of ``addr`` within its cache line."""
    return addr & (CACHE_LINE_SIZE - 1)


def page_base(addr):
    """Return the base address of the page containing ``addr``."""
    return align_down(addr, PAGE_SIZE)


def page_offset(addr):
    """Return the offset of ``addr`` within its page."""
    return addr & (PAGE_SIZE - 1)


def split_lines(addr, size):
    """Split the byte range ``[addr, addr+size)`` into per-line chunks.

    Yields ``(line_base_addr, offset_in_line, chunk_len)`` tuples covering
    the range in address order. A range wholly inside one line yields a
    single tuple.

    >>> list(split_lines(60, 8))
    [(0, 60, 4), (64, 0, 4)]
    """
    if size < 0:
        raise AddressError("size must be non-negative, got %d" % size)
    end = addr + size
    cursor = addr
    while cursor < end:
        base = line_base(cursor)
        offset = cursor - base
        chunk = min(end - cursor, CACHE_LINE_SIZE - offset)
        yield (base, offset, chunk)
        cursor += chunk


def split_pages(addr, size):
    """Split ``[addr, addr+size)`` into per-page ``(page_base, off, len)``."""
    if size < 0:
        raise AddressError("size must be non-negative, got %d" % size)
    end = addr + size
    cursor = addr
    while cursor < end:
        base = page_base(cursor)
        offset = cursor - base
        chunk = min(end - cursor, PAGE_SIZE - offset)
        yield (base, offset, chunk)
        cursor += chunk


def lines_covering(addr, size):
    """Return the list of line base addresses touched by ``[addr, addr+size)``."""
    return [base for (base, _off, _len) in split_lines(addr, size)]


def pages_covering(addr, size):
    """Return the list of page base addresses touched by ``[addr, addr+size)``."""
    return [base for (base, _off, _len) in split_pages(addr, size)]
