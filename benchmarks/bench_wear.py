"""abl-wear: PM endurance pressure per crash-consistency scheme.

Every write-ahead scheme concentrates media writes in its log region;
the question is how hard. This bench runs the same update workload and
reports where the line writes landed and the single hottest line — the
figure an endurance budget is sized against. PAX's per-epoch dedup and
asynchronous draining reduce log pressure; mprotect's page pre-images
multiply it.
"""

from benchmarks.conftest import bench_backend
from repro.analysis.report import Table
from repro.analysis.wear import measure_wear
from repro.workloads.keys import KeySequence

RECORDS = 6000
OPS = 3000
GROUP = 64


def run_backend(name):
    backend = bench_backend(name)
    load = KeySequence(RECORDS, "sequential", seed=1)
    for index in range(RECORDS):
        backend.put(load.next(), index)
    backend.persist()
    keys = KeySequence(RECORDS, "uniform", seed=2)
    for index in range(OPS):
        backend.put(keys.next(), index)
        if (index + 1) % GROUP == 0:
            backend.persist()
    backend.persist()
    return measure_wear(backend)


def run():
    return {name: run_backend(name)
            for name in ("pax", "pmdk", "mprotect", "pm_direct")}


def test_wear_pressure(benchmark):
    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("abl-wear: line writes by region",
                  ["scheme", "data-region writes", "log-region writes",
                   "log share", "hottest line", "skew"])
    for name, report in reports.items():
        table.add_row(name, report.data_region_writes,
                      report.log_region_writes,
                      "%.0f%%" % (100 * report.log_fraction),
                      report.max_line_wear, report.skew)
    table.show()
    # No log, no log wear.
    assert reports["pm_direct"].log_region_writes == 0
    # Every logging scheme writes its log; the page-pre-image scheme
    # writes it hardest.
    assert reports["mprotect"].log_region_writes \
        > reports["pax"].log_region_writes
    # The hottest line under any WAL scheme is far above the data-region
    # mean — the endurance argument in one number.
    assert reports["pmdk"].skew > 3
