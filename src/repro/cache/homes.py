"""Memory homes below the last-level cache.

A *home* services LLC misses and receives dirty write-backs for the
physical range it owns. Host-homed media (DRAM, PM behind the host memory
controller) answer directly with media latency. The PAX device is also a
home — for the vPM range — but lives in :mod:`repro.libpax.machine`
because it answers over a CXL link; it implements this same interface.

The ``grants_exclusive`` flag is the load-path policy hook the PAX design
needs: host-homed lines may be granted E on a sole-reader load (normal
MESI), but a device home must answer loads with S so that the *first store
to every line is observable* — otherwise a silent E->M upgrade would skip
undo logging (paper §3.2).
"""

from repro.util.stats import StatGroup


class Home:
    """Interface between the cache hierarchy and a memory home."""

    #: May a sole-reader load be granted the E state?
    grants_exclusive = True

    def acquire(self, line_addr, exclusive, need_data):
        """Service a line request from the LLC miss path.

        ``exclusive`` is True for stores (RdOwn) and False for loads
        (RdShared). ``need_data`` is False when the host already holds the
        bytes and only needs permission (an S->M upgrade). Returns
        ``(data_or_None, latency_ns)``.
        """
        raise NotImplementedError

    def writeback(self, line_addr, data):
        """Accept a dirty line evicted from the LLC. Returns latency_ns."""
        raise NotImplementedError


class HostHome(Home):
    """DRAM or PM attached to the host memory controller.

    Reads and writes go straight to the backing device through the system
    address space; latency comes from the media model. This is the home
    used by the DRAM and PM-direct configurations in Figure 2.
    """

    grants_exclusive = True

    def __init__(self, name, space, read_ns, write_ns, clock=None,
                 read_limiter=None, write_limiter=None):
        self.name = name
        self._space = space
        self._read_ns = read_ns
        self._write_ns = write_ns
        self._read_limiter = read_limiter
        self._write_limiter = write_limiter
        self.stats = StatGroup(name)
        # Per-miss counters bound once (hot-path-stat-lookup rule).
        self._c_acquires = self.stats.counter("acquires")
        self._c_line_reads = self.stats.counter("line_reads")
        self._c_line_writebacks = self.stats.counter("line_writebacks")

    def acquire(self, line_addr, exclusive, need_data):
        self._c_acquires.add(1)
        if not need_data:
            # Host-internal permission upgrade: the directory handles it;
            # no media access happens.
            return None, 0.0
        data = self._space.read(line_addr, 64)
        latency = self._read_ns
        if self._read_limiter is not None:
            latency += self._read_limiter.submit(64)
        self._c_line_reads.add(1)
        return data, latency

    def writeback(self, line_addr, data):
        self._space.write(line_addr, data)
        latency = self._write_ns
        if self._write_limiter is not None:
            latency += self._write_limiter.submit(len(data))
        self._c_line_writebacks.add(1)
        return latency

    def __repr__(self):
        return "HostHome(%s)" % self.name
