"""repro.serve units: admission control, group commit, retry policy,
fault-window validation, jittered link backoff, and timed recovery."""

import pytest

from repro.cxl import LossyLink
from repro.errors import (
    FaultPlanError,
    Overload,
    RecoveryTimeout,
    ServeError,
    ServeTimeout,
)
from repro.faults import FaultTimeline, FaultWindow, LinkFaultSpec
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    AdmissionQueue,
    GroupCommitBatcher,
    Request,
    RetryPolicy,
    SloTracker,
    build_client_script,
)
from repro.sim.clock import SimClock
from repro.sim.rng import DeterministicRng
from repro.structures import HashMap
from tests.conftest import make_pax_pool


class TestAdmissionQueue:
    def test_overload_is_a_returned_typed_verdict(self):
        queue = AdmissionQueue(max_depth=2)
        assert queue.offer(Request(0, 1, "get", key=1), 0.0) is None
        assert queue.offer(Request(0, 2, "get", key=2), 0.0) is None
        verdict = queue.offer(Request(0, 3, "get", key=3), 0.0)
        assert isinstance(verdict, Overload)
        assert len(queue) == 2

    def test_stale_head_fails_with_serve_timeout(self):
        queue = AdmissionQueue(max_depth=4, timeout_ns=1_000.0)
        queue.offer(Request(0, 1, "get", key=1), 0.0)
        queue.offer(Request(0, 2, "get", key=2), 1_500.0)
        request, error = queue.pop(2_000.0)
        assert request.seq == 1
        assert isinstance(error, ServeTimeout)
        # The fresher request behind it is still servable.
        request, error = queue.pop(2_000.0)
        assert request.seq == 2 and error is None
        assert queue.pop(2_000.0) == (None, None)

    def test_drain_empties_in_fifo_order(self):
        queue = AdmissionQueue(max_depth=4)
        for seq in range(3):
            queue.offer(Request(0, seq, "get", key=seq), 0.0)
        drained = queue.drain()
        assert [r.seq for r in drained] == [0, 1, 2]
        assert len(queue) == 0


class TestGroupCommitBatcher:
    def _batcher(self, **kwargs):
        pool = make_pax_pool()
        pool.persistent(HashMap)
        return pool, GroupCommitBatcher(pool, pool.machine.clock, **kwargs)

    def test_many_persists_one_epoch_commit(self):
        pool, batcher = self._batcher(batch_max=8)
        before = pool.committed_epoch
        requests = [Request(i, i, "persist") for i in range(5)]
        for request in requests:
            batcher.park(request)
        waiters, commit_ns = batcher.flush()
        assert pool.committed_epoch == before + 1      # ONE epoch for all 5
        assert len(waiters) == 5
        assert commit_ns > 0
        assert all(r.waiting_shards == 0 for r in requests)

    def test_due_by_size_and_by_age(self):
        pool, batcher = self._batcher(batch_max=2, batch_delay_ns=1_000.0)
        clock = pool.machine.clock
        batcher.park(Request(0, 1, "persist"))
        assert not batcher.due(clock.now_ns)
        assert batcher.deadline_ns == pytest.approx(clock.now_ns + 1_000.0)
        clock.advance(1_000.0)
        assert batcher.due(clock.now_ns)               # aged out
        batcher.park(Request(1, 2, "persist"))
        assert batcher.due(clock.now_ns)               # full
        assert batcher.due(batcher.deadline_ns)        # boundary agreement

    def test_fail_all_reports_each_waiter_once(self):
        _pool, batcher = self._batcher()
        fresh = Request(0, 1, "persist")
        stale = Request(1, 2, "persist")
        stale.failed = True                            # another shard's crash
        batcher.park(fresh)
        batcher.park(stale)
        failed = batcher.fail_all()
        assert failed == [fresh]
        assert fresh.failed and fresh.waiting_shards == 0
        # A flush after the crash commits nothing for the failed batch.
        assert batcher.flush() == ([], 0.0)


class TestRetryPolicy:
    def test_backoff_is_exponential_capped_and_jitter_bounded(self):
        policy = RetryPolicy(base_ns=100.0, cap_ns=400.0, jitter=0.5)
        rng = DeterministicRng(7)
        for attempt, step in ((0, 100.0), (1, 200.0), (2, 400.0), (5, 400.0)):
            backoff = policy.backoff_ns(attempt, rng)
            assert step * 0.5 <= backoff <= step

    def test_same_seed_same_schedule(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.backoff_ns(i, DeterministicRng(3).fork("r"))
             for i in range(4)]
        b = [policy.backoff_ns(i, DeterministicRng(3).fork("r"))
             for i in range(4)]
        assert a == b

    def test_retryable_errors_are_the_serve_family(self):
        assert issubclass(Overload, ServeError)
        assert issubclass(ServeTimeout, ServeError)


class TestClientScripts:
    def test_script_is_deterministic_and_ends_with_persist(self):
        a = build_client_script("A", 32, 100, seed=5)
        b = build_client_script("A", 32, 100, seed=5)
        assert a == b
        assert a[-1][0] == "persist"
        kinds = {kind for kind, _key, _value in a}
        assert kinds <= {"get", "put", "remove", "persist"}

    def test_persist_cadence_follows_mutations(self):
        script = build_client_script("W", 16, 40, seed=9, persist_every=4,
                                     delete_fraction=0.0)
        mutations = 0
        for kind, _key, _value in script:
            if kind == "put":
                mutations += 1
            elif kind == "persist" and mutations % 4 != 0:
                # Only the final top-up persist may break the cadence.
                assert script.index((kind, _key, _value)) >= len(script) - 1


class TestFaultWindows:
    def test_zero_width_window_rejected_at_build_time(self):
        with pytest.raises(FaultPlanError):
            FaultTimeline.build([FaultWindow("crash", 10, 10)])

    def test_inverted_and_negative_windows_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultWindow("crash", 20, 10).validate()
        with pytest.raises(FaultPlanError):
            FaultWindow("crash", -1, 10).validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultWindow("meteor", 0, 10).validate()

    def test_link_storm_requires_a_spec(self):
        with pytest.raises(FaultPlanError):
            FaultWindow("link-storm", 0, 10).validate()

    def test_same_kind_overlap_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultTimeline.build([FaultWindow("crash", 0, 10),
                                 FaultWindow("crash", 5, 15)])

    def test_different_kinds_may_overlap(self):
        spec = LinkFaultSpec()
        timeline = FaultTimeline.build([
            FaultWindow("crash", 5, 15),
            FaultWindow("link-storm", 0, 20, link=spec),
        ])
        assert timeline.active("crash", 5).kind == "crash"
        assert timeline.active("crash", 15) is None    # half-open [start, end)
        assert timeline.active("link-storm", 10).link is spec
        assert len(timeline.of_kind("crash")) == 1


class _StubLink:
    name = "stub"
    one_way_ns = 10.0

    def send_h2d(self, _message):
        return 10.0

    def send_d2h(self, _message):
        return 10.0


class _AlwaysDrop:
    def random(self):
        return 0.0


class _DropThenJitter:
    """random() says "drop" for drop checks, 0.5 for jitter draws.

    The lossy link draws drop-or-not first, then (if retransmitting and
    jittered) one jitter fraction — so alternate the answers.
    """

    def __init__(self):
        self._calls = 0

    def random(self):
        self._calls += 1
        return 0.0 if self._calls % 2 else 0.5


class TestLossyJitter:
    def test_jitter_shaves_backoff_deterministically(self):
        spec = LinkFaultSpec(drop_rate=0.5, timeout_ns=0.0,
                             backoff_base_ns=100.0, backoff_cap_ns=1_000.0,
                             max_retries=3, jitter=0.5)
        from repro.errors import LinkError
        link = LossyLink(_StubLink(), spec, rng=_DropThenJitter())
        with pytest.raises(LinkError):
            link.send_h2d("msg")
        # Each backoff loses jitter * 0.5 of itself: 75 + 150 + 300.
        assert link.stats.counter("backoff_ns").value == 75 + 150 + 300
        assert link.stats.counter("retransmits").value == 3

    def test_zero_jitter_keeps_the_pinned_schedule(self):
        spec = LinkFaultSpec(drop_rate=0.5, timeout_ns=0.0,
                             backoff_base_ns=100.0, backoff_cap_ns=250.0,
                             max_retries=4)
        from repro.errors import LinkError
        link = LossyLink(_StubLink(), spec, rng=_AlwaysDrop())
        with pytest.raises(LinkError):
            link.send_h2d("msg")
        assert link.stats.counter("backoff_ns").value == 100 + 200 + 250 + 250

    def test_set_spec_swaps_and_returns_previous(self):
        calm = LinkFaultSpec(drop_rate=0.0)
        storm = LinkFaultSpec(drop_rate=0.5)
        link = LossyLink(_StubLink(), calm, rng=DeterministicRng(1))
        previous = link.set_spec(storm)
        assert previous is calm
        assert link.spec is storm
        assert link.stats.counter("spec_swaps").value == 1
        link.set_spec(previous)
        assert link.spec is calm


class TestTimedRecovery:
    def _crashed_pool(self):
        pool = make_pax_pool()
        table = pool.persistent(HashMap)
        for key in range(8):
            table.put(key, key * 11)
        pool.persist()
        table.put(99, 99)
        pool.crash()
        return pool

    def test_recovery_reports_and_charges_elapsed_sim_time(self):
        pool = self._crashed_pool()
        before = pool.machine.clock.now_ns
        report = pool.restart()
        assert report.records_scanned > 0
        assert report.elapsed_ns > 0
        # Recovery charges its elapsed time to the machine clock (the
        # allocator reattach after it charges a little more on top).
        assert pool.machine.clock.now_ns >= before + report.elapsed_ns

    def test_deadline_breach_raises_after_pool_is_consistent(self):
        pool = self._crashed_pool()
        with pytest.raises(RecoveryTimeout) as excinfo:
            pool.restart(recovery_deadline_ns=0.001)
        report = excinfo.value.report
        assert report is not None and report.elapsed_ns > 0.001
        # The machine stayed down; a deadline-free retry finishes
        # bring-up on the already-consistent pool.
        assert pool.machine.crashed
        retry_report = pool.restart()
        assert retry_report.records_rolled_back == 0
        table = pool.reattach_root(HashMap)
        assert table.get(3) == 33 and table.get(99) is None

    def test_generous_deadline_does_not_raise(self):
        pool = self._crashed_pool()
        report = pool.restart(recovery_deadline_ns=10**12)
        assert report.elapsed_ns < 10**12


class TestSloExport:
    def test_tracker_percentiles_and_error_budget(self):
        slo = SloTracker()
        for latency in range(1, 101):
            slo.admitted.add(1)
            slo.record_completion("get", float(latency))
        slo.gave_up.add(1)
        p50, p99, p999 = slo.latency_percentiles()
        assert p50 <= p99 <= p999 <= 100.0
        assert slo.error_budget_spent == pytest.approx(0.01)

    def test_prometheus_export_includes_p999(self):
        slo = SloTracker()
        slo.record_completion("put", 123.0)
        registry = MetricsRegistry(clock=SimClock(), namespace="repro")
        registry.register(slo.stats, component="serve")
        text = registry.to_prometheus()
        assert 'quantile="0.999"' in text
        assert "repro_serve_request_ns_count" in text
        assert "repro_serve_put_ns" in text
