"""Figure 2a: AMAT estimates for DRAM / PM / PM-via-CXL / PM-via-Enzian.

Reproduces the paper's §5 methodology: measure L1/L2/LLC miss rates from
the single-thread hash-table get() benchmark (8 B keys/values, uniform),
then combine with media latencies. Prints the four bars and checks the
paper's two headline claims:

* claim-cxl-25pct — the CXL PAX adds ~25% to AMAT over raw PM;
* claim-enzian-2x — the Enzian PAX's overhead is ~2x the CXL PAX's.
"""

from repro.analysis.amat import AmatModel, CONFIGS, measure_miss_rates
from repro.analysis.report import Table

LABELS = {
    "dram": "DRAM",
    "pm": "PM",
    "pm_cxl": "PM via CXL",
    "pm_enzian": "PM via Enzian",
}


def run_fig2a():
    rates = measure_miss_rates(record_count=20000, op_count=30000)
    model = AmatModel(rates)
    return model, model.estimate_all()


def test_fig2a_amat(benchmark):
    model, estimates = benchmark.pedantic(run_fig2a, rounds=1, iterations=1)

    table = Table("Figure 2a: AMAT estimates [ns]", ["configuration",
                                                     "AMAT (ns)",
                                                     "crash consistent"])
    consistent = {"dram": "no", "pm": "no", "pm_cxl": "yes",
                  "pm_enzian": "yes"}
    for config in CONFIGS:
        table.add_row(LABELS[config], estimates[config], consistent[config])
    table.show()
    rates = model.miss_rates
    print("miss rates: L1 %.1f%%  L2 %.1f%%  LLC %.1f%%  (of %d accesses)"
          % (100 * rates.l1_miss_rate, 100 * rates.l2_miss_rate,
             100 * rates.llc_miss_rate, rates.accesses))
    print("claim-cxl-25pct: CXL PAX adds %.1f%% to AMAT over PM "
          "(paper: ~25%%)" % (100 * model.cxl_overhead_over_pm()))
    print("claim-enzian-2x: Enzian/CXL overhead ratio %.2f (paper: ~2x)"
          % model.enzian_overhead_ratio())

    # Shape assertions (who wins, by roughly what factor).
    assert estimates["dram"] < estimates["pm"] < estimates["pm_cxl"] \
        < estimates["pm_enzian"]
    assert 0.05 < model.cxl_overhead_over_pm() < 0.45
    assert 1.5 < model.enzian_overhead_ratio() < 2.6


def test_fig2a_hbm_sensitivity(benchmark):
    """Extension row: a warm device HBM cache shrinks the PAX penalty."""

    def run():
        rates = measure_miss_rates(record_count=20000, op_count=30000)
        return {hit_rate: AmatModel(rates, hbm_hit_rate=hit_rate)
                .amat_ns("pm_cxl") for hit_rate in (0.0, 0.25, 0.5, 0.75)}

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("Figure 2a extension: PM-via-CXL AMAT vs HBM hit rate",
                  ["hbm hit rate", "AMAT (ns)"])
    for hit_rate, amat in sorted(curves.items()):
        table.add_row("%.0f%%" % (100 * hit_rate), amat)
    table.show()
    values = [curves[k] for k in sorted(curves)]
    assert values == sorted(values, reverse=True)
