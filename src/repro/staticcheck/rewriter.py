"""Token-preserving line edits for the persist-order auto-fix pass.

The fixer must not reformat code it did not write (no libcst, no
``ast.unparse`` round-trip — both would churn every line and destroy
comments), so every rewrite is expressed as one of two primitive edits
against the *original* line numbering:

:class:`Insertion`
    New line(s) spliced in before a 1-based line number. Anchoring on
    the original numbering means a whole batch of edits can be planned
    against one parse of the file; :func:`apply_edits` applies them
    bottom-up so earlier splices never shift later anchors.
:class:`Indentation`
    A closed line range shifted right by a prefix (used to pull a
    region under an inserted ``with`` header). Blank lines are left
    untouched.

Everything outside the edited lines is preserved byte for byte, which
is what makes the idempotence contract checkable with a plain string
comparison.
"""

import difflib

from repro.errors import LintError


class Insertion:
    """Insert ``lines`` before 1-based ``before_line``.

    ``order`` breaks ties between insertions at the same anchor: lower
    values end up closer to the top. Insert-after-statement callers
    anchor at ``stmt.end_lineno + 1``.
    """

    __slots__ = ("before_line", "lines", "order")

    def __init__(self, before_line, lines, order=0):
        if before_line < 1:
            raise LintError("insertion anchor %d is not a 1-based line"
                            % before_line)
        self.before_line = before_line
        self.lines = list(lines)
        self.order = order

    def __repr__(self):
        return "Insertion(before_line=%d, %r)" % (self.before_line,
                                                  self.lines)


class Indentation:
    """Prefix every non-blank line in ``[first, last]`` (1-based,
    inclusive) with ``prefix``."""

    __slots__ = ("first", "last", "prefix")

    def __init__(self, first, last, prefix="    "):
        if not 1 <= first <= last:
            raise LintError("bad indentation range %d..%d" % (first, last))
        self.first = first
        self.last = last
        self.prefix = prefix

    def __repr__(self):
        return "Indentation(%d..%d)" % (self.first, self.last)


def indent_of(line):
    """The leading whitespace of one source line."""
    return line[:len(line) - len(line.lstrip())] if line.strip() else ""


def apply_edits(source, edits):
    """Apply a batch of edits planned against ``source``'s numbering.

    Indentations are applied first (they never renumber), then
    insertions from the bottom of the file upward; two insertions at
    the same anchor keep their ``order``. Anchors may point one past
    the last line (append). Returns the rewritten source.
    """
    lines = source.splitlines()
    trailing_newline = source.endswith("\n") or not source

    for edit in edits:
        if not isinstance(edit, Indentation):
            continue
        if edit.last > len(lines):
            raise LintError("indentation range %d..%d exceeds %d lines"
                            % (edit.first, edit.last, len(lines)))
        for index in range(edit.first - 1, edit.last):
            if lines[index].strip():
                lines[index] = edit.prefix + lines[index]

    insertions = [edit for edit in edits if isinstance(edit, Insertion)]
    for edit in insertions:
        if edit.before_line > len(lines) + 1:
            raise LintError("insertion anchor %d exceeds %d lines"
                            % (edit.before_line, len(lines)))
    # Bottom-up, and reversed order-within-anchor, so that inserting
    # each batch at its anchor preserves (anchor, order) ordering.
    for edit in sorted(insertions,
                       key=lambda e: (e.before_line, e.order),
                       reverse=True):
        lines[edit.before_line - 1:edit.before_line - 1] = edit.lines

    out = "\n".join(lines)
    if trailing_newline:
        out += "\n"
    return out


def unified_diff(old, new, path):
    """A ``diff -u``-style patch turning ``old`` into ``new``.

    Empty string when the sources are identical; otherwise ends with a
    newline so concatenated per-file diffs stay a valid patch.
    """
    if old == new:
        return ""
    diff = difflib.unified_diff(
        old.splitlines(keepends=True), new.splitlines(keepends=True),
        fromfile="a/" + path.replace("\\", "/").lstrip("./"),
        tofile="b/" + path.replace("\\", "/").lstrip("./"))
    text = "".join(diff)
    if not text.endswith("\n"):
        text += "\n"
    return text
