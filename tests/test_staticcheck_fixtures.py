"""The seeded-violation fixture packages: each checker must fire on
exactly the planted lines of its ``*_bad.py`` fixture and stay silent
on the clean twin — zero false positives, zero false negatives."""

import os

from repro.staticcheck import run_paths

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures", "staticcheck")


def fixture_findings(subdir):
    findings = run_paths([os.path.join(FIXTURES, subdir)])
    return [(os.path.basename(f.path), f.rule_id, f.lineno)
            for f in findings]


def test_persist_order_fixture_fires_on_planted_lines():
    assert fixture_findings("structures") == [
        ("persist_bad.py", "persist-order", 20),   # gate on one branch
        ("persist_bad.py", "persist-order", 36),   # store after commit
        ("persist_bad.py", "persist-order", 48),   # ungated bound-store alias
        ("persist_bad.py", "persist-order", 60),   # gate opened after store
    ]


def test_det_taint_fixture_fires_on_planted_lines():
    assert fixture_findings("taint") == [
        ("taint_bad.py", "det-taint", 21),   # wall clock -> clock.advance
        ("taint_bad.py", "det-taint", 26),   # os.urandom -> rng.seed
        ("taint_bad.py", "det-taint", 31),   # helper-return summary
        ("taint_bad.py", "det-taint", 37),   # set iteration order
    ]


def test_pm_escape_fixture_fires_on_planted_lines():
    assert fixture_findings("escape") == [
        ("escape_bad.py", "pm-escape", 16),   # public attribute
        ("escape_bad.py", "pm-escape", 17),   # public return
        ("escape_bad.py", "pm-escape", 23),   # aliased foreign call
    ]


def test_clean_twins_are_clean_under_every_checker():
    for subdir in ("structures", "taint", "escape"):
        for name, _rule, _line in fixture_findings(subdir):
            assert "clean" not in name, (subdir, name)


def test_interprocedural_taint_needs_the_project_index():
    """The helper-summary finding (line 31) exists only because run_paths
    builds a call graph; it rides through ``_entropy``'s return value."""
    found = fixture_findings("taint")
    assert ("taint_bad.py", "det-taint", 31) in found
