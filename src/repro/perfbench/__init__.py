"""Wall-clock performance regression harness.

Everything else in this repository measures *simulated* nanoseconds; this
package measures how fast the simulator itself runs, so that hot-path
regressions (an accidental per-access allocation, a string-keyed stat
lookup creeping back in) are caught by a number rather than by a feeling.
See docs/performance.md for the design rules this harness polices.

``python -m repro.perfbench`` runs a fixed workload x backend matrix and
writes a JSON report (see :data:`SCHEMA`); ``--compare`` grades a fresh
run against a committed baseline and fails on regression. Two different
quantities appear in a report and are deliberately kept apart:

* ``ops_per_sec`` — wall-clock throughput. Machine-dependent; compared
  with a tolerance.
* ``sim_ns`` — simulated time the workload consumed. Machine-independent
  and fully deterministic; compared exactly when configurations match,
  because any drift means simulated *behaviour* changed, which is never
  acceptable for a performance-only patch.

Wall-clock timing is inherently non-deterministic, so this package (like
``sim/clock.py``) is sanctioned to import :mod:`time`; nothing here feeds
back into simulation results.
"""

import gc
import json
import time

from repro.baselines import make_backend
from repro.cache.cache import CacheConfig
from repro.errors import ConfigError
from repro.replay import MARK_TIMED, record, replay_trace
from repro.sim.rng import DeterministicRng

#: Report format identifier, bumped on incompatible layout changes.
SCHEMA = "repro.perfbench/1"

#: Comparison report format identifier (see :func:`compare_report`).
COMPARE_SCHEMA = "repro.perfbench.compare/1"

#: Workloads in the default matrix.
WORKLOADS = ("store_heavy", "load_heavy", "mixed")

#: Execution engines. ``access`` drives the backend through its public
#: put/get path (the executable spec); ``replay`` records that exact
#: event stream once per cell config, then re-executes the trace through
#: :mod:`repro.replay` — byte-identical simulated behaviour, measured on
#: the replay interpreter's wall clock.
ENGINES = ("access", "replay")

#: Backends in the default matrix (the paper's headline comparison set,
#: plus the instrumentation spectrum: hand-written gates ``pmdk``,
#: per-store compiler gates ``compiler``, auto-placed gates ``autopass``).
BACKENDS = ("dram", "pm_direct", "pmdk", "compiler", "autopass", "pax")

#: Per-cell accounting pulled off backends that expose it: gate commits,
#: ordering stalls, undo-log bytes. How hand-written vs compiler vs
#: auto-placed gate placement differ shows up in these columns.
CELL_COUNTERS = ("gate_count", "sfence_count", "wal_bytes")

#: Default operation counts: sized so a full matrix finishes in about a
#: minute on a laptop while still spending >90% of its time in the
#: simulator's per-access path.
DEFAULT_OPS = 20000
DEFAULT_RECORDS = 2000
DEFAULT_SEED = 42

#: Same ~8x-scaled cache geometry the pytest benchmarks use, so perfbench
#: exercises the realistic mixed hit/miss regime rather than pure L1 hits.
BENCH_CACHES = dict(
    l1_config=CacheConfig(size_bytes=8 * 1024, ways=4),
    l2_config=CacheConfig(size_bytes=64 * 1024, ways=8),
    llc_config=CacheConfig(size_bytes=256 * 1024, ways=16),
)

_HEAP = 8 * 1024 * 1024
_LOG = 2 * 1024 * 1024


def build_backend(name, llc_config=None, mechanisms=None, mech_policy="lru",
                  device_mechanisms=None, hbm_lines=None):
    """Build ``name`` with perfbench-standard sizing.

    The optional overrides are the sweep axes (:mod:`repro.sweep`):
    ``llc_config`` replaces the BENCH_CACHES LLC, ``mechanisms`` is a
    miss-path mechanism spec (:mod:`repro.cache.mechanisms`) applied to
    the host hierarchy, ``mech_policy`` the buffer-internal replacement
    policy, ``device_mechanisms`` the spec for the PAX device's PM read
    path, and ``hbm_lines`` shrinks (or grows) the device's HBM cache so
    that path actually sees PM traffic. The device knobs apply to
    PAX-family backends only. All default to the historical
    configuration, so existing callers (and committed baselines) are
    untouched.
    """
    kwargs = dict(heap_size=_HEAP, capacity=1 << 12)
    if name in ("pax", "hybrid"):
        kwargs = dict(pool_size=_HEAP, log_size=_LOG, capacity=1 << 12)
        if device_mechanisms not in (None, "", "none") or hbm_lines is not None:
            from repro.core.config import PaxConfig
            config = PaxConfig(mechanism_policy=mech_policy)
            if device_mechanisms not in (None, "", "none"):
                config.mechanisms = device_mechanisms
            if hbm_lines is not None:
                config.hbm_lines = hbm_lines
            kwargs["pax_config"] = config
    elif device_mechanisms not in (None, "", "none"):
        raise ConfigError(
            "device mechanisms need a PAX device; backend %r has none"
            % (name,))
    kwargs.update(BENCH_CACHES)
    if llc_config is not None:
        kwargs["llc_config"] = llc_config
    if mechanisms not in (None, "", "none"):
        kwargs["mechanisms"] = mechanisms
        kwargs["mech_policy"] = mech_policy
    return make_backend(name, **kwargs)


def _run_ops(backend, workload, ops, hi, rng):
    """The timed operation loop of ``workload`` (no timing here)."""
    if workload == "store_heavy":
        for i in range(ops):
            backend.put(rng.randint(0, hi), i)
    elif workload == "load_heavy":
        for _i in range(ops):
            backend.get(rng.randint(0, hi))
    elif workload == "mixed":
        for i in range(ops):
            key = rng.randint(0, hi)
            if i & 1:
                backend.put(key, i)
            else:
                backend.get(key)
    else:
        raise ConfigError("unknown workload %r (have %s)"
                          % (workload, ", ".join(WORKLOADS)))


def _drive(backend, workload, ops, records, seed):
    """Run the timed phase; returns (wall_s, sim_ns)."""
    rng = DeterministicRng(seed)
    for i in range(records):
        backend.put(i, i)
    hi = records - 1
    sim_start = backend.now_ns
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        _run_ops(backend, workload, ops, hi, rng)
        wall_s = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return wall_s, backend.now_ns - sim_start


#: (workload, backend, ops, records, seed) -> (Trace, timed-phase sim_ns).
#: Replay cells record once per configuration and replay many times; the
#: cached Trace also memoizes its decoded fast-path columns, so sweeps
#: pay the recording and decoding cost a single time.
_TRACE_CACHE = {}


def record_cell_trace(workload, backend_name, ops, records, seed,
                      mechanisms=None, mech_policy="lru"):
    """Record (or fetch the cached) trace for one cell configuration.

    The machine-seam event stream depends on structure logic and data
    values, **not** on cache geometry or miss-path mechanisms — which is
    what lets :mod:`repro.sweep` record once at the default configuration
    and replay the same trace across a whole cache-config grid. The
    mechanism knobs are still part of the cache key because perfbench's
    own replay engine asserts sim_ns equality against the recording,
    which only holds when record and replay configs match.
    """
    key = (workload, backend_name, ops, records, seed,
           mechanisms or "none", mech_policy)
    cached = _TRACE_CACHE.get(key)
    if cached is not None:
        return cached
    backend = build_backend(backend_name, mechanisms=mechanisms,
                            mech_policy=mech_policy)
    timed_sim = []

    def drive(live, recorder):
        rng = DeterministicRng(seed)
        for i in range(records):
            live.put(i, i)
        recorder.mark(MARK_TIMED)
        sim_start = live.now_ns
        _run_ops(live, workload, ops, records - 1, rng)
        timed_sim.append(live.now_ns - sim_start)

    trace = record(backend, drive,
                   meta={"workload": workload, "ops": ops,
                         "records": records, "seed": seed})
    cached = (trace, timed_sim[0])
    _TRACE_CACHE[key] = cached
    return cached


#: Backwards-compatible private alias (pre-sweep name).
_record_cell_trace = record_cell_trace


def _drive_replay(workload, backend_name, ops, records, seed,
                  mechanisms=None, mech_policy="lru"):
    """Replay one cell's recorded trace; returns (wall_s, sim_ns).

    The trace is recorded (and cached) through the per-access path, so
    the replayed simulation is that path's event stream re-executed; the
    engine asserts the timed-phase ``sim_ns`` matches the recording —
    every replay cell is a free equivalence check on the clock.
    """
    trace, expected_sim = record_cell_trace(
        workload, backend_name, ops, records, seed,
        mechanisms=mechanisms, mech_policy=mech_policy)
    backend = build_backend(backend_name, mechanisms=mechanisms,
                            mech_policy=mech_policy)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        result = replay_trace(trace, backend,
                              stopwatch=time.perf_counter)
    finally:
        if gc_was_enabled:
            gc.enable()
    if result.sim_ns_timed != expected_sim:
        raise ConfigError(
            "replay diverged: %s/%s timed phase consumed %d sim-ns, "
            "the per-access recording consumed %d"
            % (workload, backend_name, result.sim_ns_timed, expected_sim))
    return result.wall_s_timed, result.sim_ns_timed, backend


def attach_tracer(backend, tracer):
    """Wire ``tracer`` into ``backend`` through its richest attach hook.

    ``repro.obs`` tracers know how to attach themselves (adopting the
    backend's simulated clock); plain :class:`~repro.sanitizer.base.Tracer`
    objects go through the backend's or machine's ``attach_tracer``.
    """
    self_attach = getattr(tracer, "attach", None)
    if self_attach is not None:
        self_attach(backend)
        return
    hook = getattr(backend, "attach_tracer", None)
    (hook or backend.machine.attach_tracer)(tracer)


def _run_cell(workload, backend_name, ops, records, seed, repeats, tracer,
              engine="access", mechanisms=None, mech_policy="lru"):
    """Measure one cell; returns ``(result dict, last backend)``."""
    if repeats < 1:
        raise ConfigError("repeats must be >= 1")
    if engine not in ENGINES:
        raise ConfigError("unknown engine %r (have %s)"
                          % (engine, ", ".join(ENGINES)))
    if engine == "replay" and tracer is not None:
        raise ConfigError("tracers observe the per-access path; replay "
                          "cells cannot be traced")
    best_wall = None
    sim_ns = None
    backend = None
    for _attempt in range(repeats):
        if engine == "replay":
            wall_s, cell_sim_ns, backend = _drive_replay(
                workload, backend_name, ops, records, seed,
                mechanisms=mechanisms, mech_policy=mech_policy)
        else:
            backend = build_backend(backend_name, mechanisms=mechanisms,
                                    mech_policy=mech_policy)
            if tracer is not None:
                attach_tracer(backend, tracer)
            wall_s, cell_sim_ns = _drive(backend, workload, ops, records,
                                         seed)
        if sim_ns is None:
            sim_ns = cell_sim_ns
        elif sim_ns != cell_sim_ns:
            raise ConfigError(
                "non-deterministic simulation: %s/%s consumed %d ns then %d"
                % (workload, backend_name, sim_ns, cell_sim_ns))
        if best_wall is None or wall_s < best_wall:
            best_wall = wall_s
    cell = {
        "workload": workload,
        "backend": backend_name,
        "engine": engine,
        "ops": ops,
        "wall_s": round(best_wall, 6),
        "ops_per_sec": round(ops / best_wall, 1) if best_wall > 0 else 0.0,
        "sim_ns": sim_ns,
    }
    if mechanisms not in (None, "", "none"):
        cell["mechanisms"] = mechanisms
        cell["mech_policy"] = mech_policy
    for counter in CELL_COUNTERS:
        value = getattr(backend, counter, None)
        # bool is an int subclass; exclude it so a stray flag attribute
        # never masquerades as a counter.
        if isinstance(value, int) and not isinstance(value, bool):
            cell[counter] = value
    return cell, backend


def run_cell(workload, backend_name, ops=DEFAULT_OPS, records=DEFAULT_RECORDS,
             seed=DEFAULT_SEED, repeats=1, tracer=None, engine="access",
             mechanisms=None, mech_policy="lru"):
    """Measure one workload x backend cell; returns a result dict.

    With ``repeats`` > 1 the cell is rebuilt and rerun that many times and
    the best (largest throughput) wall-clock figure is reported — the
    standard defence against a scheduler hiccup polluting a measurement.
    ``sim_ns`` is identical across repeats by construction; this is
    asserted, making every multi-repeat run a free determinism check.

    ``tracer`` (a :class:`~repro.obs.tracer.ObsTracer` or any sanitizer
    tracer) is attached to every rebuilt backend; since tracers only
    observe, the ``sim_ns`` assertion keeps holding — which is how the
    harness proves tracing never perturbs the simulation.

    ``engine`` selects how the cell executes (see :data:`ENGINES`).
    Replay cells record the per-access event stream once, then measure
    the trace interpreter; their ``sim_ns`` is checked against the
    recording, so the two engines are directly comparable.

    ``mechanisms``/``mech_policy`` select a miss-path mechanism stack
    for the host hierarchy (:mod:`repro.cache.mechanisms`); the default
    (no mechanisms) is the historical configuration.
    """
    cell, _backend = _run_cell(workload, backend_name, ops, records, seed,
                               repeats, tracer, engine,
                               mechanisms=mechanisms,
                               mech_policy=mech_policy)
    return cell


def run_matrix(workloads=WORKLOADS, backends=BACKENDS, ops=DEFAULT_OPS,
               records=DEFAULT_RECORDS, seed=DEFAULT_SEED, repeats=1,
               progress=None, tracer_factory=None, cell_hook=None,
               engines=("access",), mechanisms=None, mech_policy="lru"):
    """Run the full matrix; returns the report dict (see :data:`SCHEMA`).

    ``tracer_factory()`` (optional) builds a fresh tracer per cell;
    ``cell_hook(cell, backend, tracer)`` then receives each finished
    cell with its (last-repeat) backend and tracer, so the CLI can dump
    trace events and metrics without the report format changing.

    ``engines`` extends the matrix with a third axis; the default stays
    access-only so existing baselines keep their shape. ``mechanisms``
    (one spec for the whole matrix) applies a host miss-path mechanism
    stack to every cell; grids over many specs belong to
    :mod:`repro.sweep`.
    """
    results = []
    for engine in engines:
        for workload in workloads:
            for backend_name in backends:
                tracer = (tracer_factory() if tracer_factory is not None
                          and engine == "access" else None)
                cell, backend = _run_cell(workload, backend_name, ops,
                                          records, seed, repeats, tracer,
                                          engine, mechanisms=mechanisms,
                                          mech_policy=mech_policy)
                results.append(cell)
                if progress is not None:
                    progress(cell)
                if cell_hook is not None:
                    cell_hook(cell, backend, tracer)
    return {
        "schema": SCHEMA,
        "config": {
            "ops": ops,
            "records": records,
            "seed": seed,
            "repeats": repeats,
            "workloads": list(workloads),
            "backends": list(backends),
            "engines": list(engines),
            "mechanisms": mechanisms or "none",
        },
        "results": results,
    }


def write_report(report, path):
    """Write ``report`` as pretty JSON with a trailing newline."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path):
    """Load and schema-check a report written by :func:`write_report`."""
    with open(path) as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise ConfigError("%s is not a %s report (schema=%r)"
                          % (path, SCHEMA, report.get("schema")))
    return report


def _cell_key(cell):
    """Identity of a cell across reports. Baselines written before the
    engine axis existed (``BENCH_PR3.json``) carry no ``engine`` field;
    those cells are access cells by construction. Likewise cells from
    before the mechanism zoo carry no ``mechanisms`` field and are
    no-mechanism cells."""
    return (cell["workload"], cell["backend"], cell.get("engine", "access"),
            cell.get("mechanisms", "none"))


def compare_report(current, baseline, tolerance=0.30):
    """Grade ``current`` against ``baseline``; returns a comparison dict.

    The dict (schema :data:`COMPARE_SCHEMA`) is the machine-readable form
    the CLI writes next to its human-readable verdict: one entry per cell
    present in both reports, carrying both wall-clock figures, the delta,
    and the pass/fail flags, plus the flat ``problems`` list that
    :func:`compare` returns.

    Two checks, matching the two quantities in a report:

    * wall-clock: a cell regresses when its throughput drops below
      ``baseline * (1 - tolerance)``. Tolerant, because machines differ.
    * simulated time: compared **exactly**, but only when the two reports
      ran the same config (ops/records/seed) — ``sim_ns`` must not move
      under a performance-only change.

    Cells present in only one report are ignored (the matrix may grow).
    """
    if not 0 <= tolerance < 1:
        raise ConfigError("tolerance must be in [0, 1)")
    base_cells = {_cell_key(cell): cell for cell in baseline["results"]}
    same_config = all(
        current["config"].get(key) == baseline["config"].get(key)
        for key in ("ops", "records", "seed"))
    cells = []
    problems = []
    for cell in current["results"]:
        workload, backend, engine, _mechanisms = _cell_key(cell)
        base = base_cells.get(_cell_key(cell))
        if base is None:
            continue
        floor = base["ops_per_sec"] * (1.0 - tolerance)
        regressed = cell["ops_per_sec"] < floor
        ratio = (cell["ops_per_sec"] / base["ops_per_sec"]
                 if base["ops_per_sec"] > 0 else 0.0)
        entry = {
            "workload": workload,
            "backend": backend,
            "engine": engine,
            "wall_s": cell["wall_s"],
            "baseline_wall_s": base["wall_s"],
            "wall_s_delta": round(cell["wall_s"] - base["wall_s"], 6),
            "ops_per_sec": cell["ops_per_sec"],
            "baseline_ops_per_sec": base["ops_per_sec"],
            "throughput_ratio": round(ratio, 4),
            "regressed": regressed,
            "sim_ns": cell["sim_ns"],
            "baseline_sim_ns": base["sim_ns"],
            "sim_ns_checked": same_config,
            "sim_ns_match": cell["sim_ns"] == base["sim_ns"],
        }
        cells.append(entry)
        if regressed:
            problems.append(
                "%s/%s[%s]: %.0f ops/s is below %.0f (baseline %.0f - %d%%)"
                % (workload, backend, engine, cell["ops_per_sec"],
                   floor, base["ops_per_sec"], round(tolerance * 100)))
        if same_config and cell["sim_ns"] != base["sim_ns"]:
            problems.append(
                "%s/%s[%s]: simulated time changed %d -> %d ns under "
                "identical config; the patch changed behaviour, not just "
                "speed"
                % (workload, backend, engine, base["sim_ns"],
                   cell["sim_ns"]))
    return {
        "schema": COMPARE_SCHEMA,
        "tolerance": tolerance,
        "same_config": same_config,
        "cells": cells,
        "problems": problems,
    }


def compare(current, baseline, tolerance=0.30):
    """Grade ``current`` against ``baseline``; returns a list of problems.

    Convenience wrapper over :func:`compare_report` — the flat problem
    strings only, for callers that just need a pass/fail verdict.
    """
    return compare_report(current, baseline, tolerance)["problems"]
