"""Clean twin of ``taint_bad.py``.

Same sink calls, but every value reaching them is deterministic: it
comes from the simulation itself, from explicit parameters, or through
a ``sorted()`` order-launder.  The test suite asserts staticcheck
reports nothing here.
"""


def _next_delay(config):
    """Deterministic helper: pure function of its argument."""
    return config.step * 2


def drive(clock, sim_clock):
    delay = sim_clock.now() * 2
    clock.advance(delay)


def reseed(rng, seed):
    rng.seed(seed)


def schedule_batch(scheduler, config):
    scheduler.schedule(_next_delay(config))


def replay(events, link):
    pending = set(events)
    for message in sorted(pending):
        link.send(message)


def rekill(clock):
    import time  # lint: ignore[sim-determinism] fixture: taint killed below
    stamp = time.time()
    stamp = 0
    clock.advance(stamp)
