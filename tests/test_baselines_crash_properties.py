"""Property-based crash sweeps for the WAL baselines.

The snapshot schemes get their hypothesis treatment in
test_crash_properties.py; here the per-operation-durable schemes (PMDK,
redo, compiler-pass) are cut at arbitrary store boundaries and must
recover to a state matching some *prefix* of completed operations —
never a torn operation.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import make_backend
from repro.crashtest import CrashInjector, check_prefix_atomic, count_stores
from tests.conftest import small_cache_kwargs

SETTINGS = settings(max_examples=12, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def build(name):
    return make_backend(name, heap_size=4 * 1024 * 1024, capacity=64,
                        **small_cache_kwargs())


def run_ops(backend, ops):
    for kind, key, value in ops:
        if kind == "put":
            backend.put(key, value)
        else:
            backend.remove(key)


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 15), st.integers(0, 500)),
        st.tuples(st.just("remove"), st.integers(0, 15), st.just(0)),
    ),
    min_size=1, max_size=15)


@pytest.mark.parametrize("name", ["pmdk", "redo", "compiler"])
class TestWalPrefixAtomicity:
    @SETTINGS
    @given(ops=ops_strategy, crash_fraction=st.floats(0.0, 1.0))
    def test_any_cut_recovers_to_an_op_prefix(self, name, ops,
                                              crash_fraction):
        # Probe run to count stores, then a fresh run with an injected cut.
        probe = build(name)
        for key in range(5):
            probe.put(key, key)
        base = dict(probe.to_dict())
        total = count_stores(probe.machine, lambda: run_ops(probe, ops))

        backend = build(name)
        for key in range(5):
            backend.put(key, key)
        injector = CrashInjector(backend.machine)
        injector.arm(int(total * crash_fraction))
        crashed = injector.run(lambda: run_ops(backend, ops))
        if not crashed:
            backend.crash()
        backend.restart()
        prefix = check_prefix_atomic(backend.to_dict(), ops,
                                     base_state=base)
        assert 0 <= prefix <= len(ops)


class TestMprotectSnapshotProperty:
    @SETTINGS
    @given(n_committed=st.integers(0, 12), n_lost=st.integers(0, 12),
           crash_fraction=st.floats(0.0, 1.0))
    def test_mprotect_recovers_to_last_persist(self, n_committed, n_lost,
                                               crash_fraction):
        backend = build("mprotect")
        for key in range(n_committed):
            backend.put(key, key)
        backend.persist()
        snapshot = dict(backend.to_dict())
        lost_ops = [("put", 100 + key, key) for key in range(n_lost)]
        probe_total = max(1, n_lost * 4)
        injector = CrashInjector(backend.machine)
        injector.arm(int(probe_total * crash_fraction))
        crashed = injector.run(lambda: run_ops(backend, lost_ops))
        if not crashed:
            backend.crash()
        backend.restart()
        assert backend.to_dict() == snapshot
