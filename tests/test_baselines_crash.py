"""Crash consistency contracts per scheme, including mid-operation cuts."""

import pytest

from repro.baselines import make_backend
from repro.crashtest import CrashInjector, check_prefix_atomic, count_stores
from tests.conftest import small_cache_kwargs

PER_OP_DURABLE = ["pmdk", "redo", "compiler", "autopass"]
SNAPSHOT = ["mprotect", "pax"]


def build(name):
    kwargs = dict(heap_size=4 * 1024 * 1024, capacity=64)
    if name == "pax":
        kwargs = dict(pool_size=4 * 1024 * 1024, log_size=256 * 1024,
                      capacity=64)
    kwargs.update(small_cache_kwargs())
    return make_backend(name, **kwargs)


@pytest.mark.parametrize("name", PER_OP_DURABLE)
class TestPerOpDurability:
    def test_all_completed_ops_survive(self, name):
        backend = build(name)
        for key in range(60):
            backend.put(key, key)
        backend.crash()
        backend.restart()
        assert backend.to_dict() == {key: key for key in range(60)}

    def test_removes_survive(self, name):
        backend = build(name)
        for key in range(20):
            backend.put(key, key)
        backend.remove(5)
        backend.remove(15)
        backend.crash()
        backend.restart()
        expected = {key: key for key in range(20) if key not in (5, 15)}
        assert backend.to_dict() == expected

    def test_mid_operation_crash_is_atomic(self, name):
        # Cut a put() half-way at several store offsets: after recovery
        # the op either fully happened or never happened.
        backend = build(name)
        for key in range(10):
            backend.put(key, key)
        base = backend.to_dict()
        stores = count_stores(backend.machine, lambda: backend.put(99, 990))
        backend.remove(99)   # undo the counting run (keeps state known)
        base = backend.to_dict()
        for cut in {1, stores // 2, max(1, stores - 1)}:
            fresh = build(name)
            for key, value in base.items():
                fresh.put(key, value)
            injector = CrashInjector(fresh.machine)
            injector.arm(cut)
            crashed = injector.run(lambda: fresh.put(99, 990))
            if not crashed:
                continue
            fresh.restart()
            check_prefix_atomic(fresh.to_dict(), [("put", 99, 990)],
                                base_state=fresh.to_dict() if False else base)


@pytest.mark.parametrize("name", SNAPSHOT)
class TestSnapshotSemantics:
    def test_recovers_to_last_persist_exactly(self, name):
        backend = build(name)
        for key in range(30):
            backend.put(key, key)
        backend.persist()
        snapshot = dict(backend.to_dict())
        for key in range(30, 60):
            backend.put(key, key)
        backend.remove(0)
        backend.crash()
        backend.restart()
        assert backend.to_dict() == snapshot

    def test_mid_operation_crash_recovers_to_snapshot(self, name):
        backend = build(name)
        for key in range(20):
            backend.put(key, key)
        backend.persist()
        snapshot = dict(backend.to_dict())
        stores = count_stores(backend.machine,
                              lambda: backend.put(77, 770))
        # The counting run already applied the put; persist a new snapshot
        # and cut the next op instead.
        backend.persist()
        snapshot = dict(backend.to_dict())
        injector = CrashInjector(backend.machine)
        injector.arm(max(1, stores // 2))
        crashed = injector.run(lambda: backend.put(88, 880))
        assert crashed
        backend.restart()
        assert backend.to_dict() == snapshot

    def test_repeated_crash_restart_cycles(self, name):
        backend = build(name)
        committed = {}
        for cycle in range(4):
            for key in range(cycle * 10, cycle * 10 + 10):
                backend.put(key, cycle)
                committed[key] = cycle
            backend.persist()
            for key in range(100, 105):
                backend.put(key, 999)     # never persisted
            backend.crash()
            backend.restart()
            assert backend.to_dict() == committed


class TestPmDirectIsNotCrashConsistent:
    """The negative control: PM Direct tears."""

    def test_mid_op_crash_with_eadr_can_tear(self):
        # With eADR all stores are durable, so a cut put() leaves a torn
        # structure state (e.g. count bumped but node unlinked, or node
        # linked while allocator metadata is stale).
        torn_or_lost = 0
        for cut in (1, 2, 3, 5, 8):
            backend = make_backend("pm_direct", heap_size=4 * 1024 * 1024,
                                   capacity=64, eadr=True,
                                   **small_cache_kwargs())
            for key in range(10):
                backend.put(key, key)
            injector = CrashInjector(backend.machine)
            injector.arm(cut)
            if not injector.run(lambda: backend.put(42, 420)):
                continue
            if not backend.restart():
                torn_or_lost += 1
                continue
            try:
                state = backend.to_dict()
            except Exception:
                torn_or_lost += 1
                continue
            base = {key: key for key in range(10)}
            if state != base and state != dict(base, **{42: 420}):
                torn_or_lost += 1
        assert torn_or_lost > 0

    def test_plain_adr_loses_cached_writes(self):
        backend = make_backend("pm_direct", heap_size=4 * 1024 * 1024,
                               capacity=64, **small_cache_kwargs())
        for key in range(10):
            backend.put(key, key)
        backend.crash()
        if backend.restart():
            assert backend.to_dict() != {key: key for key in range(10)}
