"""PAX: cache-coherent accelerators for persistent memory crash consistency.

A full-system Python reproduction of Bhardwaj et al., HotStorage '22.
See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.

Quickstart (paper Listing 1)::

    from repro import map_pool, HashMap

    pool = map_pool("./ht.pool")
    ht = pool.persistent(HashMap)
    ht.put(1, 100)
    print("Key 1 =", ht.get(1))
    ht.put(2, 200)
    pool.persist()
"""

from repro.core import PaxConfig, PaxDevice, recover_pool
from repro.errors import ReproError
from repro.libpax import (
    HostMachine,
    PaxMachine,
    PaxPool,
    Persistent,
    PmAllocator,
    map_pool,
)
from repro.structures import (
    BlobMap,
    BTree,
    HashMap,
    PersistentList,
    PersistentVector,
    RingBuffer,
)

__version__ = "0.1.0"

__all__ = [
    "BlobMap",
    "BTree",
    "HashMap",
    "HostMachine",
    "PaxConfig",
    "PaxDevice",
    "PaxMachine",
    "PaxPool",
    "Persistent",
    "PersistentList",
    "PersistentVector",
    "PmAllocator",
    "ReproError",
    "RingBuffer",
    "__version__",
    "map_pool",
    "recover_pool",
]
