"""Store-protection coverage over a recorded trace.

The staticcheck witness pass (:mod:`repro.staticcheck.witness`) asks
one question of a trace — "does it end with unprotected PM stores?" —
but the underlying walk produces a richer picture worth exposing on its
own: how many stores ran inside a WAL window, how many were retired by
a later ``PERSIST``, and how many were still exposed when the trace
ended. This module computes that breakdown with exactly the witness
semantics, so the two can never disagree about what "protected" means:

* a ``STORE``/``RAW_WRITE`` issued while a WAL window is open (a
  ``WAL_APPEND`` has happened since the last ``WAL_RESET``) is
  *wal-protected* at issue time;
* an unprotected store is *persist-retired* by the next ``PERSIST``;
* anything else is *exposed* — a crash at end-of-trace loses it.
"""


from repro.replay.format import (
    PERSIST,
    RAW_WRITE,
    STORE,
    WAL_APPEND,
    WAL_RESET,
)


class CoverageReport:
    """Protection breakdown of one trace's PM stores."""

    __slots__ = ("stores", "wal_protected", "persist_retired", "exposed",
                 "wal_windows", "persists")

    def __init__(self, stores, wal_protected, persist_retired, exposed,
                 wal_windows, persists):
        self.stores = stores
        self.wal_protected = wal_protected
        self.persist_retired = persist_retired
        self.exposed = exposed
        self.wal_windows = wal_windows
        self.persists = persists

    @property
    def safe(self):
        """True iff a crash at the final event loses nothing."""
        return self.exposed == 0

    def to_dict(self):
        """The breakdown as a plain dict (JSON-ready)."""
        return {"stores": self.stores,
                "wal_protected": self.wal_protected,
                "persist_retired": self.persist_retired,
                "exposed": self.exposed,
                "wal_windows": self.wal_windows,
                "persists": self.persists}


def coverage(trace):
    """Walk ``trace`` once and return its :class:`CoverageReport`."""
    wal_open = False
    pending = 0
    stores = 0
    wal_protected = 0
    persist_retired = 0
    wal_windows = 0
    persists = 0
    for kind in trace.kinds:
        if kind in (STORE, RAW_WRITE):
            stores += 1
            if wal_open:
                wal_protected += 1
            else:
                pending += 1
        elif kind == WAL_APPEND:
            if not wal_open:
                wal_windows += 1
            wal_open = True
        elif kind == WAL_RESET:
            wal_open = False
        elif kind == PERSIST:
            persists += 1
            persist_retired += pending
            pending = 0
    return CoverageReport(stores, wal_protected, persist_retired,
                          pending, wal_windows, persists)
