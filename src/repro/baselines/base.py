"""Common interface for every key-value backend under test.

Each backend binds the *same* :class:`~repro.structures.hashmap.HashMap`
code to a different machine/accessor combination, reproducing the paper's
comparison set:

================  ============================================================
``dram``          volatile hash table in DRAM (Fig 2b upper bound)
``pm_direct``     hash table on PM, no crash consistency (Fig 2b middle)
``pmdk``          hand-crafted synchronous undo WAL (Fig 2b lower; paper §2)
``redo``          redo-log WAL variant
``compiler``      compiler-injected per-store logging (Atlas/iDO style)
``mprotect``      page-fault interposition at 4 KiB granularity [12,15,20]
``pax``           the contribution (vPM through the accelerator)
================  ============================================================

A backend exposes ``put/get/remove`` plus ``persist()`` (group-commit
point; meaning varies per scheme), crash/restart hooks for the crash
tests, and its machine so harnesses can read the simulated clock.
"""

from repro.structures.hashmap import HashMap
from repro.util.stats import StatGroup


class KvBackend:
    """Interface implemented by every backend."""

    #: Short name used in benchmark tables.
    name = "abstract"
    #: Does the scheme guarantee crash consistency?
    crash_consistent = False

    def __init__(self):
        self.stats = StatGroup(self.name)

    # -- data path -----------------------------------------------------------

    def put(self, key, value):
        """Insert or update one pair."""
        raise NotImplementedError

    def get(self, key, default=None):
        """Point lookup."""
        raise NotImplementedError

    def remove(self, key):
        """Delete one key."""
        raise NotImplementedError

    def persist(self):
        """Reach a durability point (no-op where meaningless)."""

    def __len__(self):
        raise NotImplementedError

    # -- simulation hooks --------------------------------------------------------

    @property
    def machine(self):
        """The simulated machine (for clocks and stats)."""
        raise NotImplementedError

    @property
    def now_ns(self):
        """Simulated time on this backend's machine."""
        return self.machine.clock.now_ns

    def crash(self):
        """Simulate power loss."""
        self.machine.crash()

    def restart(self):
        """Reboot and run whatever recovery the scheme defines."""
        raise NotImplementedError

    def to_dict(self):
        """Materialize contents for verification."""
        raise NotImplementedError

    # -- trace replay (repro.replay) ---------------------------------------

    def replay_structure_stats(self):
        """Stat groups the structure layer increments *directly*.

        Trace replay (:mod:`repro.replay`) re-executes everything below
        the recorded seams — hierarchy loads/stores, WAL appends, flush,
        ``persist()`` — so those counters must match by re-execution.
        Counters the structure layer bumps itself (op counts, allocator
        traffic) never run during replay; their deltas travel in the
        trace footer under these keys. Subclasses that add structure-side
        accounting must extend this map.
        """
        groups = {"backend.stats": self.stats}
        alloc = getattr(getattr(self, "_map", None), "_alloc", None)
        stats = getattr(alloc, "stats", None)
        if stats is not None:
            groups["backend.allocator.stats"] = stats
        return groups


class StructureBackend(KvBackend):
    """A backend whose data path is a HashMap over some accessor.

    Subclasses build the machine and accessor, then call
    :meth:`_bind_structure`; the hash-map code itself is shared —
    the black-box reuse property in action.
    """

    def __init__(self):
        super().__init__()
        self._map = None
        # Per-operation counters bound once (hot-path-stat-lookup rule).
        self._c_puts = self.stats.counter("puts")
        self._c_gets = self.stats.counter("gets")
        self._c_removes = self.stats.counter("removes")

    def _bind_structure(self, mem, allocator, capacity=1024):
        self._map = HashMap.create(mem, allocator, capacity=capacity)

    def _reattach_structure(self, mem, allocator, root):
        self._map = HashMap.attach(mem, allocator, root)

    def put(self, key, value):
        self._c_puts.value += 1
        return self._map.put(key, value)

    def get(self, key, default=None):
        self._c_gets.value += 1
        return self._map.get(key, default)

    def remove(self, key):
        self._c_removes.value += 1
        return self._map.remove(key)

    def __len__(self):
        return len(self._map)

    def items(self):
        """Yield ``(key, value)`` pairs (verification/integrity checks)."""
        return self._map.items()

    def to_dict(self):
        return self._map.to_dict()

    @property
    def root(self):
        """Structure-space offset of the hash map header."""
        return self._map.root
