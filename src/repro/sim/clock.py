"""Simulated time.

Everything in this package charges time to a :class:`SimClock` in
nanoseconds instead of reading the wall clock, which makes every benchmark
deterministic and lets the crash injector cut execution at an exact
simulated instant. The clock only moves forward.
"""

from repro.errors import ConfigError, SimulationError


class SimClock:
    """A monotonically advancing nanosecond clock.

    Components call :meth:`advance` to charge latency as work happens.
    Asynchronous components (the PAX undo logger, write-back coordinator)
    register tick callbacks via :meth:`on_advance`; each callback receives
    ``(previous_ns, now_ns)`` and performs whatever background work fits in
    that interval. That is how "the device logs asynchronously while the
    CPU keeps running" is modelled without real threads.
    """

    def __init__(self, start_ns=0):
        if start_ns < 0:
            raise ConfigError("clock cannot start before time zero")
        self._now_ns = start_ns
        self._callbacks = []
        self._in_callback = False

    @property
    def now_ns(self):
        """Current simulated time in nanoseconds."""
        return self._now_ns

    def advance(self, delta_ns):
        """Move time forward by ``delta_ns`` and run background callbacks."""
        if delta_ns < 0:
            raise SimulationError(
                "time cannot move backwards (delta=%r)" % (delta_ns,))
        if delta_ns == 0:
            return self._now_ns
        previous = self._now_ns
        self._now_ns = previous + delta_ns
        if self._callbacks and not self._in_callback:
            # Guard against re-entrant advancement from inside a callback;
            # background work observes time but must not create more of it
            # recursively.
            self._in_callback = True
            try:
                for callback in self._callbacks:
                    callback(previous, self._now_ns)
            finally:
                self._in_callback = False
        return self._now_ns

    def on_advance(self, callback):
        """Register ``callback(prev_ns, now_ns)`` to run on every advance."""
        self._callbacks.append(callback)

    def remove_callback(self, callback):
        """Unregister a previously registered callback (no-op if absent)."""
        if callback in self._callbacks:
            self._callbacks.remove(callback)

    def __repr__(self):
        return "SimClock(now=%d ns)" % self._now_ns


class StopWatch:
    """Measures elapsed simulated time between :meth:`start` and :meth:`stop`."""

    def __init__(self, clock):
        self._clock = clock
        self._start_ns = None
        self.elapsed_ns = 0

    def start(self):
        """Begin timing."""
        self._start_ns = self._clock.now_ns
        return self

    def stop(self):
        """Stop timing and return the elapsed nanoseconds."""
        if self._start_ns is None:
            raise SimulationError("stopwatch was never started")
        self.elapsed_ns = self._clock.now_ns - self._start_ns
        self._start_ns = None
        return self.elapsed_ns

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
