"""Named roots: several structures sharing one pool and one snapshot."""

import pytest

from repro.errors import PoolError
from repro.libpax.pool import name_hash
from repro.structures import BTree, HashMap, PersistentList, PersistentVector
from tests.conftest import make_pax_pool


class TestNameHash:
    def test_deterministic(self):
        assert name_hash("users") == name_hash("users")

    def test_distinct(self):
        names = ["users", "orders", "index", "queue", "a", "b", ""]
        hashes = {name_hash(name) for name in names}
        assert len(hashes) == len(names)

    def test_never_zero(self):
        assert name_hash("") != 0


class TestNamedRoots:
    def test_multiple_structures(self, pax_pool):
        users = pax_pool.persistent_named("users", HashMap, capacity=64)
        events = pax_pool.persistent_named("events", PersistentList)
        index = pax_pool.persistent_named("index", BTree)
        users.put(1, 100)
        events.push_back(7)
        index.put(5, 50)
        pax_pool.persist()
        assert users.get(1) == 100
        assert events.to_list() == [7]
        assert index.get(5) == 50
        assert len(pax_pool.named_roots()) == 3

    def test_reopen_by_name(self, pax_pool):
        users = pax_pool.persistent_named("users", HashMap, capacity=64)
        users.put(9, 90)
        again = pax_pool.persistent_named("users", HashMap)
        assert again.root == users.root
        assert again.get(9) == 90

    def test_one_snapshot_covers_all(self, pax_pool):
        users = pax_pool.persistent_named("users", HashMap, capacity=64)
        events = pax_pool.persistent_named("events", PersistentVector)
        users.put(1, 1)
        events.append(11)
        pax_pool.persist()
        users.put(2, 2)
        events.append(22)
        pax_pool.crash()
        pax_pool.restart()
        users = pax_pool.reattach_named("users", HashMap)
        events = pax_pool.reattach_named("events", PersistentVector)
        # Both roll back to the same snapshot — atomically, together.
        assert users.to_dict() == {1: 1}
        assert events.to_list() == [11]

    def test_styles_cannot_mix(self, pax_pool):
        pax_pool.persistent(HashMap, capacity=64)
        with pytest.raises(PoolError):
            pax_pool.persistent_named("x", HashMap)

    def test_styles_cannot_mix_reverse(self, pax_pool):
        pax_pool.persistent_named("x", HashMap, capacity=64)
        with pytest.raises(PoolError):
            pax_pool.persistent(HashMap)

    def test_reattach_unknown_name(self, pax_pool):
        pax_pool.persistent_named("x", HashMap, capacity=64)
        with pytest.raises(PoolError):
            pax_pool.reattach_named("missing", HashMap)

    def test_named_roots_empty_for_single_style(self, pax_pool):
        pax_pool.persistent(HashMap, capacity=64)
        assert pax_pool.named_roots() == {}

    def test_directory_survives_unpersisted_creation_crash(self, pax_pool):
        # Crash right after creating a structure but before the directory
        # entry persists: reopening re-creates cleanly (leak, no dangle).
        users = pax_pool.persistent_named("users", HashMap, capacity=64)
        users.put(1, 1)
        pax_pool.persist()
        # Create a second structure, then crash before its second persist
        # completes the directory publish... simulate by direct mutation:
        directory = pax_pool._root_directory(create=False)
        directory.put(name_hash("ghost"), 0xDEAD00)   # never persisted
        pax_pool.crash()
        pax_pool.restart()
        users = pax_pool.reattach_named("users", HashMap)
        assert users.get(1) == 1
        with pytest.raises(PoolError):
            pax_pool.reattach_named("ghost", HashMap)
