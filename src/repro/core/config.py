"""PAX device configuration."""

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass
class PaxConfig:
    """Tunables of one PAX device instance.

    Defaults model the paper's target: an FPGA/ASIC device with a sizeable
    HBM cache of PM, a bounded SRAM write-back buffer, and asynchronous
    undo logging that drains at device speed. Every knob is swept by an
    ablation benchmark (DESIGN.md §4).
    """

    #: Capacity of the on-device HBM cache of PM, in cache lines.
    #: 0 disables the HBM cache entirely (ablation abl-hbm).
    hbm_lines: int = 16384

    #: Capacity of the modified-line buffer, in cache lines. Overflow
    #: forces evictions gated on undo-entry durability (paper §3.3).
    writeback_buffer_lines: int = 4096

    #: Rate at which the device drains buffered undo entries to the PM log
    #: region, bytes/second of log written.
    log_drain_bps: float = 2e9

    #: Rate of background write-back of buffered modified lines to PM.
    writeback_drain_bps: float = 2e9

    #: Log each line at most once per epoch. Safe (rollback only needs the
    #: epoch-start value) and what the paper implies; ablatable.
    dedup_log_entries: bool = True

    #: Prefer evicting buffered lines whose undo entries are already
    #: durable, avoiding a forced synchronous log pump (paper §3.3).
    prefer_durable_eviction: bool = True

    #: Fixed device pipeline cost charged per message (FPGA/ASIC service).
    device_processing_ns: float = 15.0

    #: Miss-path mechanism spec for the device's PM read path (e.g.
    #: ``"victim:32"``, ``"stream:4x4+nextline:16"``); None/"none"
    #: disables the zoo — see :mod:`repro.cache.mechanisms`.
    mechanisms: str = None

    #: Replacement policy inside the mechanisms that have one.
    mechanism_policy: str = "lru"

    def validate(self):
        """Raise :class:`ConfigError` on inconsistent settings."""
        from repro.cache.mechanisms import make_mechanisms
        make_mechanisms(self.mechanisms, self.mechanism_policy)
        if self.hbm_lines < 0:
            raise ConfigError("hbm_lines cannot be negative")
        if self.writeback_buffer_lines <= 0:
            raise ConfigError("write-back buffer needs at least one line")
        if self.log_drain_bps <= 0 or self.writeback_drain_bps <= 0:
            raise ConfigError("drain rates must be positive")
        if self.device_processing_ns < 0:
            raise ConfigError("processing cost cannot be negative")
        return self
