"""Cache line data containers and MESI states.

Coherence *state* is tracked centrally by the directory
(:mod:`repro.cache.coherence`); cache arrays store only data and a dirty
bit. This mirrors a precise snoop filter and removes the classic simulator
bug class of L1/L2 state divergence.
"""

from repro.errors import ProtocolError
from repro.util.constants import CACHE_LINE_SIZE


class MesiState:
    """Per-core coherence states (directory-tracked)."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    #: States that permit a store without a coherence transaction.
    WRITABLE = (MODIFIED, EXCLUSIVE)


class CacheLine:
    """One line's worth of data resident in a cache array."""

    __slots__ = ("addr", "data", "dirty")

    def __init__(self, addr, data, dirty=False):
        data = bytearray(data)
        if len(data) != CACHE_LINE_SIZE:
            raise ProtocolError("cache line must be %d bytes" % CACHE_LINE_SIZE)
        self.addr = addr
        self.data = data
        self.dirty = dirty

    def write(self, offset, payload):
        """Modify bytes within the line and mark it dirty."""
        payload = bytes(payload)
        self.data[offset:offset + len(payload)] = payload
        self.dirty = True

    def read(self, offset, length):
        """Read bytes within the line."""
        return bytes(self.data[offset:offset + length])

    def snapshot(self):
        """Immutable copy of the current contents."""
        return bytes(self.data)

    def __repr__(self):
        return "CacheLine(0x%x%s)" % (self.addr, " dirty" if self.dirty else "")
