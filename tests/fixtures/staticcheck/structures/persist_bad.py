"""Seeded ``persist-order`` violations.

Every function here stores to PM through an accessor on at least one
path that is NOT dominated by an open tx/persist gate.  The test suite
asserts staticcheck reports exactly these lines; the clean twin
(``persist_clean.py``) must report none.
"""


class BranchGate:
    """Gate opened on only one branch: the else-path store is bare."""

    def __init__(self, mem, tx):
        self._mem = mem
        self._tx = tx

    def put(self, slot, value, durable):
        if durable:
            self._tx.begin(slot)
        self._mem.write_u64(slot * 8, value)  # VIOLATION: else path ungated
        if durable:
            self._tx.end()


class ClosedGate:
    """Store issued after the gate has already been committed."""

    def __init__(self, mem, tx):
        self._mem = mem
        self._tx = tx

    def put(self, slot, value):
        self._tx.begin(slot)
        self._mem.write_u64(slot * 8, value)
        self._tx.end()
        self._mem.write_u64(0, slot)  # VIOLATION: gate already closed


class AliasStore:
    """Bound-store alias used with no gate anywhere in the function."""

    def __init__(self, mem):
        self._mem = mem
        self._write_u64 = mem.write_u64

    def stamp(self, offset, value):
        write = self._write_u64
        write(offset, value)  # VIOLATION: aliased store, never gated


class LoopGate:
    """Gate opened only after the first loop iteration has stored."""

    def __init__(self, mem, tx):
        self._mem = mem
        self._tx = tx

    def fill(self, count):
        for index in range(count):
            self._mem.write_u64(index * 8, index)  # VIOLATION: 1st iter bare
            self._tx.begin(index)
        self._tx.end()
