"""Physical memory devices.

A :class:`MemoryDevice` owns a contiguous physical byte range and services
reads and writes at byte granularity. :class:`DramDevice` is the simplest:
volatile storage that forgets everything on a crash. The persistent-memory
device lives in :mod:`repro.pm.device` and layers durability semantics on
top of the same interface.

Devices store bytes in a ``bytearray``; address arithmetic is always done
relative to the device's own base so devices can be placed anywhere in the
system map (:mod:`repro.mem.address_space`).
"""

from repro.errors import AddressError, ConfigError
from repro.util.stats import StatGroup


class MemoryDevice:
    """A contiguous physical memory region with read/write byte access."""

    #: Human-readable device kind, overridden by subclasses.
    KIND = "memory"

    def __init__(self, name, size):
        if size <= 0:
            raise ConfigError("device %s must have positive size" % name)
        self.name = name
        self.size = size
        self._data = bytearray(size)
        self.stats = StatGroup(name)
        # Per-access counters bound once (hot-path-stat-lookup rule).
        self._c_reads = self.stats.counter("reads")
        self._c_bytes_read = self.stats.counter("bytes_read")
        self._c_writes = self.stats.counter("writes")
        self._c_bytes_written = self.stats.counter("bytes_written")

    def _check_range(self, offset, length):
        if length < 0:
            raise AddressError("negative access length %d on %s" % (length, self.name))
        if offset < 0 or offset + length > self.size:
            raise AddressError(
                "access [0x%x, +%d) outside device %s of size 0x%x"
                % (offset, length, self.name, self.size))

    def read(self, offset, length):
        """Return ``length`` bytes starting at device-relative ``offset``."""
        self._check_range(offset, length)
        self._c_reads.value += 1
        self._c_bytes_read.value += length
        return bytes(self._data[offset:offset + length])

    def write(self, offset, data):
        """Store ``data`` at device-relative ``offset``."""
        data = bytes(data)
        size = len(data)
        self._check_range(offset, size)
        self._c_writes.value += 1
        self._c_bytes_written.value += size
        self._data[offset:offset + size] = data

    def fill(self, offset, length, value=0):
        """Set ``length`` bytes at ``offset`` to ``value``."""
        self._check_range(offset, length)
        self._data[offset:offset + length] = bytes([value]) * length

    def on_crash(self):
        """Apply crash semantics. Base devices lose nothing extra."""

    def __repr__(self):
        return "%s(%s, %d bytes)" % (type(self).__name__, self.name, self.size)


class DramDevice(MemoryDevice):
    """Volatile DRAM: contents are zeroed by a crash (power loss)."""

    KIND = "dram"

    def on_crash(self):
        """Power loss: volatile contents are gone."""
        self._data = bytearray(self.size)
        self.stats.counter("crash_wipes").add(1)
