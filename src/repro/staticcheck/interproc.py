"""Whole-program interprocedural persistency analysis.

The per-function checkers (PR4) stop at call boundaries; this layer
propagates :class:`~repro.staticcheck.summaries.FunctionSummary` facts
over the :class:`~repro.staticcheck.callgraph.ProjectIndex` so that
gates opened in a callee (or guaranteed by a mechanism class) discharge
findings in callers. The moving parts:

* **Class hierarchy + field types.** ``self.``-method calls resolve
  through the class's own methods and its base chain across modules;
  ``self._wal.append(...)`` resolves through a *field type* recorded
  from constructor-shaped assignments (``self._wal = Wal(...)``,
  ``self._map = HashMap.create(...)``, ``self.pool.persistent(HashMap,
  ...)``).
* **Summary fixed point.** Function summaries are computed bottom-up in
  Tarjan SCC order over the strict call graph; recursive SCCs iterate
  to a least fixed point (``opens_gate`` starts pessimistic-False and
  only monotonically flips to True), so mutual recursion converges and
  never *invents* a gate.
* **Discharge rules.** A persist-order candidate is discharged when
  - [mechanism] its enclosing class *is* the gate mechanism: it defines
    both an open verb (``begin``/...) and a close verb (``end``/
    ``commit``/...), or it is constructed into a mechanism-named field
    (``self._wal = Wal(...)``) somewhere in the program — ``Wal.append``
    cannot be expected to gate itself;
  - [lifecycle, baselines only] it sits in ``__init__``/``persist``/
    ``restart``/``recover``/``close`` of a backend class (or a helper
    called *only* from those): recovery and publish paths write PM
    outside the steady-state transaction protocol by design;
  - [gated-context] the store is protected iff the caller holds a gate
    (``@entry``-dependent) and *every* resolved caller provably calls
    in gated, with no unresolved aliases of the function's name.
  Everything else survives and gains a call-path trace.

Discharges only ever *remove* per-function findings (summaries add
must-open guarantees; close-effects are deliberately not applied at
call sites), so interprocedural mode reports a subset of per-function
mode — no new false positives by construction.
"""

import ast

from repro.staticcheck.callgraph import module_key
from repro.staticcheck.checkers import (
    _GATE_CLOSE_ATTRS,
    _GATE_OPEN_ATTRS,
    _module_sanctioned_for_taint,
    _EscapeAnalysis,
    _ModuleImportsShim,
)
from repro.staticcheck.cfg import build_cfg
from repro.staticcheck.dataflow import TOP
from repro.staticcheck.summaries import (
    has_direct_taint_source,
    returns_value,
    summarize_gates,
)

#: Backend lifecycle methods: allowed to write PM outside the tx protocol.
LIFECYCLE_NAMES = frozenset({
    "__init__", "persist", "restart", "recover", "close"})

#: Root classes whose (transitive) subclasses count as backends.
BACKEND_ROOT_NAMES = frozenset({"KvBackend", "StructureBackend"})

#: A class constructed into one of these fields *is* the log mechanism.
MECHANISM_FIELDS = frozenset({
    "wal", "_wal", "log", "_log", "undo", "_undo",
    "journal", "_journal", "cells", "_cells"})

_FACTORY_ATTRS = frozenset({"create", "attach"})


def _segments(text, sep):
    return text.split(sep)


class GateResolver:
    """Callee facts for one function's gate analysis.

    ``opens(call)`` — the callee is a project function whose summary
    guarantees a gate is open on return (treat the call as a gate-open).
    ``defers_store(call)`` — a store-verb call that resolves to a
    project function in checked territory; the callee body is then the
    thing being judged, not this call site.
    """

    __slots__ = ("_ip", "_module", "_owner")

    def __init__(self, ip, module, owner):
        self._ip = ip
        self._module = module
        self._owner = owner

    def _resolve(self, call):
        descriptor = self._module.call_descriptor(call.func)
        if descriptor is None:
            return None
        return self._ip.strict_resolve(self._module, self._owner,
                                       descriptor)

    def opens(self, call):
        """True if ``call`` resolves to a function that must-opens a
        gate on every path to its return."""
        target = self._resolve(call)
        if target is None:
            return False
        summary = self._ip.summaries.get((target.module, target.qualname))
        return summary is not None and summary.opens_gate

    def defers_store(self, call):
        """True if ``call`` resolves into a checked module — the store
        verb is analyzed in the callee's body, not at this call site."""
        target = self._resolve(call)
        if target is None:
            return False
        return self._ip.checked_module(target.module)


class _ResolvedTaintOracle:
    """Identity-keyed det-taint oracle for one module."""

    __slots__ = ("_ip", "_module")

    def __init__(self, ip, module):
        self._ip = ip
        self._module = module

    def tainted(self, callee):
        """True if the resolved callee's summary returns taint."""
        resolved = self._ip.project.resolve(self._module, callee)
        if resolved is None or resolved.module is None:
            return False
        summary = self._ip.summaries.get(
            (resolved.module, resolved.qualname))
        return summary is not None and summary.taint_return


class InterprocAnalysis:
    """Whole-program summary store, role tables, and discharge filter."""

    def __init__(self, project):
        self.project = project
        #: (module_key, qualname) -> FunctionSummary
        self.summaries = {}
        #: (path, lineno, col) -> (qualname, entry_dep) for candidates.
        self._meta = {}
        #: Discharged findings: [(path, lineno, col, rule)] after filter.
        self.discharged = []
        self._owner_by_func = {}
        self._field_types = {}
        self._mechanism_decls = set()
        self._backend_decls = set()
        self._noncall_names = set()   # names referenced outside call position
        self._build_class_facts()

    # -- class hierarchy ---------------------------------------------------

    def _resolve_class(self, module, name):
        """A class name in ``module`` -> ClassDecl (local or imported)."""
        decl = module.classes.get(name)
        if decl is not None:
            return decl
        source = module.imports.get(name)
        if source is None:
            return None
        target = self.project.modules.get(source)
        if target is None:
            return None
        return target.classes.get(module.import_orig.get(name, name))

    def _resolve_base(self, decl, descriptor):
        module = self.project.modules.get(decl.module)
        if module is None:
            return None
        if descriptor[0] == "local":
            return self._resolve_class(module, descriptor[1])
        target = self.project.modules.get(descriptor[1])
        if target is None:
            return None
        return target.classes.get(descriptor[2])

    def ancestors(self, decl):
        """``decl`` plus every resolvable base, depth-first, cycle-safe."""
        out = []
        seen = set()
        stack = [decl]
        while stack:
            current = stack.pop(0)
            if id(current) in seen:
                continue
            seen.add(id(current))
            out.append(current)
            for descriptor in current.bases:
                base = self._resolve_base(current, descriptor)
                if base is not None:
                    stack.append(base)
        return out

    def find_method(self, decl, name):
        """Resolve ``name`` through ``decl``'s hierarchy, or None."""
        for klass in self.ancestors(decl):
            info = klass.methods.get(name)
            if info is not None:
                return info
        return None

    def _base_names(self, decl):
        names = set()
        for klass in self.ancestors(decl):
            names.add(klass.name)
            for descriptor in klass.bases:
                names.add(descriptor[1] if descriptor[0] == "local"
                          else descriptor[2])
        return names

    # -- build-time role tables --------------------------------------------

    def _class_from_call(self, module, call):
        """The ClassDecl a constructor-shaped call produces, or None."""
        func = call.func
        if isinstance(func, ast.Name):
            decl = self._resolve_class(module, func.id)
            if decl is not None:
                return decl
        if isinstance(func, ast.Attribute) and func.attr in _FACTORY_ATTRS \
                and isinstance(func.value, ast.Name):
            decl = self._resolve_class(module, func.value.id)
            if decl is not None:
                return decl
        # ``self.pool.persistent(HashMap, ...)`` — a class passed as an
        # argument to any factory call names the constructed type.
        for arg in call.args:
            if isinstance(arg, ast.Name):
                decl = self._resolve_class(module, arg.id)
                if decl is not None:
                    return decl
        return None

    def _build_class_facts(self):
        mechanism_bound = set()    # ids of decls built into mechanism fields
        for module in self.project.modules.values():
            # Names referenced outside call position: a function whose
            # name lands here may be address-taken (callback), so the
            # caller-set rules must not trust its in-edges.
            call_funcs = set()
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    call_funcs.add(id(node.func))
            for node in ast.walk(module.tree):
                if id(node) in call_funcs:
                    continue
                if isinstance(node, ast.Name) \
                        and isinstance(node.ctx, ast.Load):
                    self._noncall_names.add(node.id)
                elif isinstance(node, ast.Attribute) \
                        and isinstance(node.ctx, ast.Load):
                    self._noncall_names.add(node.attr)

            for decl in module.classes.values():
                for info in decl.methods.values():
                    self._owner_by_func[id(info)] = decl
                # Field types from constructor-shaped self-assignments.
                for node in ast.walk(decl.node):
                    if not isinstance(node, ast.Assign) \
                            or len(node.targets) != 1:
                        continue
                    target = node.targets[0]
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    if not isinstance(node.value, ast.Call):
                        continue
                    built = self._class_from_call(module, node.value)
                    if built is None:
                        continue
                    self._field_types[(decl.module, decl.name,
                                       target.attr)] = built
                    if target.attr in MECHANISM_FIELDS:
                        mechanism_bound.add(id(built))

        for module in self.project.modules.values():
            for decl in module.classes.values():
                # Tx-accessor mechanism: the class itself defines both an
                # open verb and a close verb — its internals implement
                # the gate, they cannot also be guarded by it.
                methods = set(decl.methods)
                if methods & _GATE_OPEN_ATTRS \
                        and methods & _GATE_CLOSE_ATTRS:
                    self._mechanism_decls.add(id(decl))
                if id(decl) in mechanism_bound:
                    self._mechanism_decls.add(id(decl))
                if self._base_names(decl) & BACKEND_ROOT_NAMES:
                    self._backend_decls.add(id(decl))

    # -- strict resolution -------------------------------------------------

    def checked_module(self, key):
        """True if persist-order actually analyses ``key``'s functions."""
        parts = _segments(key, ".")
        return "structures" in parts or "baselines" in parts

    def owner_of(self, module, qualname):
        """The ClassDecl owning ``qualname`` ("Cls.meth..."), or None."""
        head = qualname.split(".")[0]
        return module.classes.get(head)

    def strict_resolve(self, module, owner, descriptor):
        """Resolve a call descriptor to a FunctionInfo — only through
        edges reliable enough to base a *discharge* on: direct local
        and import bindings, ``self.``-methods through the hierarchy,
        and accessor fields with a recorded constructor type. No
        bare-name fallback."""
        kind = descriptor[0]
        if kind == "local":
            info = module.functions.get(descriptor[1])
            # Only module-level functions: a bare name that happens to
            # collide with some method is not a real binding.
            if info is not None and "." not in info.qualname \
                    and info.qualname == descriptor[1]:
                return info
            return None
        if kind == "import":
            target = self.project.modules.get(descriptor[1])
            if target is None:
                return None
            info = target.functions.get(descriptor[2])
            if info is not None and info.qualname == descriptor[2]:
                return info
            return None
        attr, receiver = descriptor[1], descriptor[2]
        if receiver == "self":
            if owner is None:
                return None
            return self.find_method(owner, attr)
        if receiver is not None and owner is not None:
            built = self._field_types.get(
                (owner.module, owner.name, receiver))
            if built is not None:
                return self.find_method(built, attr)
        return None

    # -- summary computation -----------------------------------------------

    def _function_universe(self, module):
        """Unique ``(owner_decl, FunctionInfo)`` pairs, qualname order."""
        seen = set()
        out = []
        for qualname in sorted(module.functions):
            info = module.functions[qualname]
            if qualname != info.qualname or id(info) in seen:
                continue
            seen.add(id(info))
            out.append((self._owner_by_func.get(id(info)), info))
        return out

    def load_summaries(self, dicts):
        """Install cached summaries (list of ``FunctionSummary.to_dict``)."""
        from repro.staticcheck.summaries import FunctionSummary
        for data in dicts:
            summary = FunctionSummary.from_dict(data)
            self.summaries[summary.key] = summary

    def summary_dicts(self, key):
        """Serialized summaries of one module, sorted by qualname."""
        return [self.summaries[k].to_dict()
                for k in sorted(self.summaries) if k[0] == key]

    def compute_summaries(self, module_keys=None):
        """Summarize every function of ``module_keys`` (default: all
        indexed modules), bottom-up in SCC order; already-installed
        (cached) summaries of *other* modules feed the fixed point."""
        if module_keys is None:
            keys = sorted(self.project.modules)
        else:
            keys = sorted(k for k in module_keys
                          if k in self.project.modules)
        entries = {}
        for mk in keys:
            module = self.project.modules[mk]
            for owner, info in self._function_universe(module):
                entries[(mk, info.qualname)] = (module, owner, info)

        def callees(key):
            # Strict-resolved intra-universe successors of one function.
            module, owner, info = entries[key]
            out = []
            for descriptor in info.calls:
                target = self.strict_resolve(module, owner, descriptor)
                if target is not None:
                    tkey = (target.module, target.qualname)
                    if tkey in entries:
                        out.append(tkey)
            return out

        for scc in _tarjan(sorted(entries), callees):
            # Least fixed point: opens_gate starts False (absent from
            # self.summaries) and can only flip to True, so |scc|+1
            # rounds suffice.
            for _round in range(len(scc) + 1):
                changed = False
                for key in sorted(scc):
                    module, owner, info = entries[key]
                    resolver = GateResolver(self, module, owner)
                    summary = summarize_gates(module, info.qualname,
                                              info.node, resolver=resolver)
                    old = self.summaries.get(key)
                    if old is None \
                            or old.opens_gate != summary.opens_gate \
                            or old.calls != summary.calls:
                        changed = True
                    self.summaries[key] = summary
                if not changed:
                    break
        self._compute_taint(entries)
        self._compute_escape(entries)

    def _compute_taint(self, entries):
        for key in sorted(entries):
            module, _owner, info = entries[key]
            summary = self.summaries[key]
            summary.taint_return = (
                not _module_sanctioned_for_taint(module.key)
                and returns_value(info.node)
                and has_direct_taint_source(module, info.node))
        for _round in range(10):
            changed = False
            for key in sorted(entries):
                module, _owner, info = entries[key]
                summary = self.summaries[key]
                if summary.taint_return \
                        or _module_sanctioned_for_taint(module.key) \
                        or not returns_value(info.node):
                    continue
                for descriptor in info.calls:
                    resolved = self.project.resolve(module, descriptor)
                    if resolved is None or resolved.module is None:
                        continue
                    callee = self.summaries.get(
                        (resolved.module, resolved.qualname))
                    if callee is not None and callee.taint_return:
                        summary.taint_return = True
                        changed = True
                        break
            if not changed:
                break

    def _compute_escape(self, entries):
        for key in sorted(entries):
            module, _owner, info = entries[key]
            summary = self.summaries[key]
            summary.leaks_params = self._leaks_params(module, info.node)

    def _leaks_params(self, module, func):
        """Would this function leak a parameter that is a raw device?"""
        args = func.args
        params = [a.arg for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs) if a.arg != "self"]
        if args.vararg is not None:
            params.append(args.vararg.arg)
        if args.kwarg is not None:
            params.append(args.kwarg.arg)
        if not params:
            return False
        shim = _ModuleImportsShim(module)
        analysis = _EscapeAnalysis(shim, params=params)
        cfg = build_cfg(func)
        in_facts = analysis.solve(cfg)
        func_public = not func.name.startswith("_")
        for block in cfg.blocks:
            fact = in_facts.get(block, TOP)
            if fact is TOP:
                continue
            for kind, node in block.events:
                for _finding in analysis.escape_findings(
                        fact, kind, node, func_public):
                    return True
                fact = analysis.transfer(fact, kind, node)
        return False

    # -- checker integration -----------------------------------------------

    def gate_resolver(self, path, qualname, func):
        """The per-function :class:`GateResolver` for checkers (or
        None when ``path`` was not indexed)."""
        module = self.project.module_for(path)
        if module is None:
            return None
        return GateResolver(self, module, self.owner_of(module, qualname))

    def register_store(self, path, lineno, col, qualname, entry_dep):
        """Record one candidate finding's function and entry-gate
        dependence, keyed by location, for the discharge filter."""
        self._meta[(path, lineno, col)] = (qualname, bool(entry_dep))

    def candidates_for(self, path):
        """Cache-format candidate list for one file."""
        return sorted(
            [lineno, col, qualname, entry_dep]
            for (p, lineno, col), (qualname, entry_dep)
            in self._meta.items() if p == path)

    def taint_oracle(self, path):
        """Summary-backed det-taint oracle for one file (or None)."""
        module = self.project.module_for(path)
        if module is None:
            return None
        return _ResolvedTaintOracle(self, module)

    def escape_oracle(self, path):
        """A ``callee_safe(call)`` predicate for pm-escape: True when
        the call strict-resolves to a summarized function whose
        parameters provably do not escape (or None when ``path`` was
        not indexed)."""
        module = self.project.module_for(path)
        if module is None:
            return None

        def callee_safe(call):
            # Imported-callee calls only; attr/local stay foreign.
            descriptor = module.call_descriptor(call.func)
            if descriptor is None or descriptor[0] != "import":
                return False
            resolved = self.project.resolve(module, descriptor)
            if resolved is None or resolved.module is None:
                return False
            summary = self.summaries.get(
                (resolved.module, resolved.qualname))
            return summary is not None and not summary.leaks_params
        return callee_safe

    # -- discharge filter --------------------------------------------------

    def _build_edges(self):
        """In-edges over summaries: target -> [(caller, gatedness)]."""
        in_edges = {}
        unresolved = set()
        for key in sorted(self.summaries):
            module = self.project.modules.get(key[0])
            if module is None:
                continue
            owner = self.owner_of(module, key[1])
            for descriptor, gated in self.summaries[key].calls:
                target = self.strict_resolve(module, owner, descriptor)
                if target is None:
                    name = descriptor[2] if descriptor[0] == "import" \
                        else descriptor[1]
                    unresolved.add(name)
                    continue
                tkey = (target.module, target.qualname)
                in_edges.setdefault(tkey, []).append((key, gated))
        return in_edges, unresolved

    def _caller_trustworthy(self, key, in_edges, unresolved):
        bare = key[1].split(".")[-1]
        return bool(in_edges.get(key)) and bare not in unresolved \
            and bare not in self._noncall_names

    def _lifecycle_set(self, in_edges, unresolved):
        lifecycle = set()
        for module in self.project.modules.values():
            for decl in module.classes.values():
                if id(decl) not in self._backend_decls:
                    continue
                for name in decl.methods:
                    if name in LIFECYCLE_NAMES:
                        lifecycle.add((decl.module,
                                       "%s.%s" % (decl.name, name)))
        while True:
            changed = False
            for key in sorted(self.summaries):
                if key in lifecycle:
                    continue
                if not self._caller_trustworthy(key, in_edges, unresolved):
                    continue
                if all(caller in lifecycle
                       for caller, _g in in_edges[key]):
                    lifecycle.add(key)
                    changed = True
            if not changed:
                return lifecycle

    def _gated_set(self, in_edges, unresolved):
        gated = set()
        while True:
            changed = False
            for key in sorted(self.summaries):
                if key in gated:
                    continue
                if not self._caller_trustworthy(key, in_edges, unresolved):
                    continue
                if all(g == "yes" or (g == "entry" and caller in gated)
                       for caller, g in in_edges[key]):
                    gated.add(key)
                    changed = True
            if not changed:
                return gated

    def _call_path(self, key, in_edges, limit=5):
        """Deterministic caller chain ending at ``key``, or None."""
        path = [key]
        seen = {key}
        current = key
        for _depth in range(limit):
            callers = sorted({caller for caller, _g
                              in in_edges.get(current, ())}
                             - seen)
            if not callers:
                break
            current = callers[0]
            seen.add(current)
            path.append(current)
        if len(path) == 1:
            return None
        return " -> ".join("%s:%s" % (mod, qual)
                           for mod, qual in reversed(path))

    def filter_findings(self, findings):
        """Drop discharged persist-order candidates; annotate survivors
        that have resolved callers with their call path."""
        in_edges, unresolved = self._build_edges()
        lifecycle = self._lifecycle_set(in_edges, unresolved)
        gated = self._gated_set(in_edges, unresolved)
        kept = []
        self.discharged = []
        for finding in findings:
            if finding.rule_id != "persist-order":
                kept.append(finding)
                continue
            meta = self._meta.get(
                (finding.path, finding.lineno, finding.col))
            if meta is None:
                kept.append(finding)
                continue
            qualname, entry_dep = meta
            mkey = module_key(finding.path)
            module = self.project.modules.get(mkey)
            owner = self.owner_of(module, qualname) \
                if module is not None else None
            fkey = (mkey, qualname)
            in_baselines = "baselines" in \
                _segments(finding.path.replace("\\", "/"), "/")
            if owner is not None and id(owner) in self._mechanism_decls:
                reason = "mechanism"
            elif in_baselines and fkey in lifecycle:
                reason = "lifecycle"
            elif entry_dep and fkey in gated:
                reason = "gated-context"
            else:
                trace = self._call_path(fkey, in_edges)
                if trace is not None:
                    finding.message += " [call path: %s]" % trace
                kept.append(finding)
                continue
            self.discharged.append(
                (finding.path, finding.lineno, finding.col, reason))
        return kept


def _tarjan(nodes, successors):
    """Iterative Tarjan: SCCs in reverse topological order (sinks —
    i.e. callees — first), deterministic for sorted ``nodes``."""
    index_of = {}
    lowlink = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        work = [(root, iter(successors(root)))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs
