"""Key sequence generators for the benchmarks.

The paper's microbenchmark uses 8 B keys and values with a uniform random
access distribution (§5); YCSB-style zipfian skew is the other standard
shape for key-value stores. Both are deterministic given a seed.
"""

from repro.errors import ConfigError
from repro.sim.rng import DeterministicRng, UniformGenerator, ZipfianGenerator


class KeySpace:
    """A keyspace of ``n`` logical keys mapped onto u64 key values.

    Logical key ``i`` maps to a u64 via an affine scramble so neighbouring
    logical keys do not land in neighbouring hash buckets (matching real
    benchmark harnesses, which hash string keys).
    """

    _MULT = 0x9E3779B97F4A7C15
    _MASK = 0xFFFFFFFFFFFFFFFF

    def __init__(self, n):
        if n <= 0:
            raise ConfigError("keyspace must be non-empty")
        self.n = n

    def key(self, index):
        """The u64 key for logical index ``index``."""
        return ((index + 1) * self._MULT) & self._MASK

    def all_keys(self):
        """All u64 keys in logical order."""
        return [self.key(i) for i in range(self.n)]


class KeySequence:
    """Stream of u64 keys drawn from a distribution over a keyspace."""

    DISTRIBUTIONS = ("uniform", "zipfian", "sequential")

    def __init__(self, n, distribution="uniform", theta=0.99, seed=42):
        if distribution not in self.DISTRIBUTIONS:
            raise ConfigError("unknown distribution %r" % (distribution,))
        self.space = KeySpace(n)
        self.distribution = distribution
        self._cursor = 0
        rng = DeterministicRng(seed)
        if distribution == "uniform":
            self._gen = UniformGenerator(n, rng)
        elif distribution == "zipfian":
            self._gen = ZipfianGenerator(n, theta=theta, rng=rng)
        else:
            self._gen = None

    def next(self):
        """Return the next key."""
        if self.distribution == "sequential":
            index = self._cursor % self.space.n
            self._cursor += 1
        else:
            index = self._gen.next()
        return self.space.key(index)

    def take(self, count):
        """Return a list of the next ``count`` keys."""
        return [self.next() for _ in range(count)]
