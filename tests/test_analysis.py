"""The evaluation analytics: AMAT model, scaling model, write amp, reports."""

import pytest

from repro.analysis.amat import AmatModel, CONFIGS, measure_miss_rates
from repro.analysis.report import Table, format_bytes, format_ns
from repro.analysis.throughput import ScalingModel, SingleThreadProfile
from repro.analysis.writeamp import WriteAmpReport
from repro.cache.stats import MissRates
from repro.errors import ConfigError, StatsError
from repro.sim.latency import default_model


def canned_rates():
    """Miss rates in the ballpark the get() benchmark produces."""
    return MissRates(accesses=10000, l1_hits=6200, l2_hits=1500,
                     llc_hits=1700, memory_fetches=600)


class TestAmatModel:
    def test_orderings(self):
        model = AmatModel(canned_rates())
        estimates = {config: model.amat_ns(config) for config in CONFIGS}
        assert estimates["dram"] < estimates["pm"]
        assert estimates["pm"] < estimates["pm_cxl"]
        assert estimates["pm_cxl"] < estimates["pm_enzian"]

    def test_cxl_overhead_in_paper_range(self):
        model = AmatModel(canned_rates())
        overhead = model.cxl_overhead_over_pm()
        # Paper: "may only add 25% to application-experienced AMAT".
        assert 0.05 < overhead < 0.40

    def test_enzian_ratio_near_two(self):
        model = AmatModel(canned_rates())
        # Paper: Enzian prototype ~2x the CXL overhead.
        assert 1.5 < model.enzian_overhead_ratio() < 2.6

    def test_hbm_hits_reduce_pax_amat(self):
        cold = AmatModel(canned_rates(), hbm_hit_rate=0.0)
        warm = AmatModel(canned_rates(), hbm_hit_rate=0.8)
        assert warm.amat_ns("pm_cxl") < cold.amat_ns("pm_cxl")
        assert warm.amat_ns("pm") == cold.amat_ns("pm")

    def test_unknown_config_rejected(self):
        with pytest.raises(ConfigError):
            AmatModel(canned_rates()).amat_ns("pm_nvlink")

    def test_no_misses_means_cache_speed(self):
        rates = MissRates(accesses=100, l1_hits=100, l2_hits=0,
                          llc_hits=0, memory_fetches=0)
        model = AmatModel(rates)
        lat = default_model()
        for config in CONFIGS:
            assert model.amat_ns(config) == pytest.approx(lat.cache.l1_ns)


class TestMeasuredMissRates:
    LLC = None   # set lazily to avoid import order noise

    @classmethod
    def _caches(cls):
        from repro.cache.cache import CacheConfig
        return dict(l2_config=CacheConfig(size_bytes=16 * 1024, ways=8),
                    llc_config=CacheConfig(size_bytes=64 * 1024, ways=8))

    def test_get_benchmark_misses(self):
        rates = measure_miss_rates(record_count=4000, op_count=6000,
                                   **self._caches())
        assert rates.accesses > 0
        assert 0 < rates.l1_miss_rate < 1
        assert rates.memory_fetches > 0

    def test_bigger_table_misses_more(self):
        small = measure_miss_rates(record_count=1000, op_count=4000,
                                   **self._caches())
        large = measure_miss_rates(record_count=8000, op_count=4000,
                                   **self._caches())
        assert large.memory_access_fraction > small.memory_access_fraction


class TestScalingModel:
    def profile(self, per_op_ns=500.0, wbytes=200, rbytes=100):
        return SingleThreadProfile(name="x", ops=1000,
                                   elapsed_ns=per_op_ns * 1000,
                                   media_read_bytes=rbytes * 1000,
                                   media_write_bytes=wbytes * 1000)

    def test_single_thread_matches_latency(self):
        model = ScalingModel(self.profile(per_op_ns=500), 1e12, 1e12,
                             contention_per_thread=0.0)
        assert model.throughput_ops(1) == pytest.approx(2e6)

    def test_scales_until_bandwidth_ceiling(self):
        model = ScalingModel(self.profile(per_op_ns=100, wbytes=200),
                             read_bw_bps=1e12, write_bw_bps=14e9,
                             contention_per_thread=0.0)
        unbounded = 32 * 1e9 / 100
        ceiling = 14e9 / 200
        assert model.throughput_ops(32) == pytest.approx(min(unbounded,
                                                             ceiling))

    def test_contention_bends_curve(self):
        flat = ScalingModel(self.profile(), 1e12, 1e12,
                            contention_per_thread=0.0)
        bent = ScalingModel(self.profile(), 1e12, 1e12,
                            contention_per_thread=0.05)
        assert bent.throughput_ops(32) < flat.throughput_ops(32)
        assert bent.throughput_ops(1) == flat.throughput_ops(1)

    def test_curve_monotonic(self):
        model = ScalingModel(self.profile(), 1e12, 1e12)
        curve = model.curve([1, 8, 16, 24, 32])
        values = list(curve.values())
        assert values == sorted(values)


class TestWriteAmpReport:
    def test_amplification_math(self):
        report = WriteAmpReport(name="x", ops=100, logical_bytes=1600,
                                media_write_bytes=6400, log_bytes=9600)
        assert report.total_persistent_bytes == 16000
        assert report.amplification == pytest.approx(10.0)
        assert report.log_amplification == pytest.approx(6.0)

    def test_zero_ops(self):
        report = WriteAmpReport(name="x", ops=0, logical_bytes=0,
                                media_write_bytes=0, log_bytes=0)
        assert report.amplification == 0.0


class TestLatencyProfile:
    def test_records_and_summarizes(self):
        from repro.analysis.latency import LatencyProfile
        profile = LatencyProfile("x")
        for value in range(1, 101):
            profile.record(float(value))
        summary = profile.summary()
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)
        assert profile.count == 100

    def test_empty_profile(self):
        from repro.analysis.latency import LatencyProfile
        summary = LatencyProfile("x").summary()
        assert summary["max"] == 0.0

    def test_measure_against_backend(self):
        from repro.analysis.latency import measure_request_latencies
        from repro.baselines import make_backend
        from tests.conftest import small_cache_kwargs
        backend = make_backend("pax", pool_size=4 * 1024 * 1024,
                               log_size=256 * 1024, capacity=64,
                               **small_cache_kwargs())
        profile = measure_request_latencies(
            backend, keys=list(range(64)), values=list(range(64)),
            group_size=16, persist_mode="blocking")
        assert profile.count == 64
        # Requests carrying a persist dominate the tail.
        assert profile.percentile(99) > profile.percentile(50)

    def test_async_mode_uses_pipeline(self):
        from repro.analysis.latency import measure_request_latencies
        from repro.baselines import make_backend
        from tests.conftest import small_cache_kwargs
        backend = make_backend("pax", pool_size=4 * 1024 * 1024,
                               log_size=256 * 1024, capacity=64,
                               **small_cache_kwargs())
        profile = measure_request_latencies(
            backend, keys=list(range(64)), values=list(range(64)),
            group_size=16, persist_mode="async")
        assert profile.count == 64
        assert backend.machine.device.stats.get("persist_asyncs") > 0
        # The barrier + final persist leave the pool fully committed.
        assert backend.committed_epoch >= 4


class TestWear:
    def test_device_tracks_line_wear(self):
        from repro.pm.device import PmDevice
        device = PmDevice("pm", 4096)
        device.write(0, b"x" * 8)
        device.write(0, b"y" * 8)
        device.write(64, b"z" * 8)
        assert device.line_wear[0] == 2
        assert device.line_wear[64] == 1
        assert device.max_line_wear() == 2
        assert device.region_writes(0, 64) == 2
        assert device.wear_profile() == (2, 3, 2)

    def test_wear_report_on_pax_backend(self):
        from repro.analysis.wear import measure_wear
        from repro.baselines import make_backend
        from tests.conftest import small_cache_kwargs
        backend = make_backend("pax", pool_size=4 * 1024 * 1024,
                               log_size=256 * 1024, capacity=64,
                               **small_cache_kwargs())
        for key in range(50):
            backend.put(key, key)
        backend.persist()
        report = measure_wear(backend)
        assert report.log_region_writes > 0
        assert report.data_region_writes > 0
        assert 0 < report.log_fraction < 1
        assert report.skew >= 1

    def test_wear_report_regions_for_wal_backend(self):
        from repro.analysis.wear import measure_wear
        from repro.baselines import make_backend
        from tests.conftest import small_cache_kwargs
        backend = make_backend("pmdk", heap_size=4 * 1024 * 1024,
                               capacity=64, **small_cache_kwargs())
        for key in range(30):
            backend.put(key, key)
        report = measure_wear(backend)
        assert report.log_region_writes > 0


class TestMachineReport:
    def test_pax_machine_report(self):
        from repro.analysis.machine_report import machine_report
        from tests.conftest import make_pax_pool
        from repro.structures import HashMap
        pool = make_pax_pool()
        table = pool.persistent(HashMap, capacity=64)
        for key in range(30):
            table.put(key, key)
        pool.persist()
        report = machine_report(pool.machine)
        assert "cache hierarchy" in report
        assert "PAX device" in report
        assert "interconnect" in report
        assert "committed epoch" in report
        assert "simulated time" in report

    def test_host_machine_report(self, dram_machine):
        from repro.analysis.machine_report import machine_report
        dram_machine.mem().write_u64(64, 1)
        report = machine_report(dram_machine)
        assert "cache hierarchy" in report
        assert "medium (dram0)" in report


class TestReportFormatting:
    def test_table_render(self):
        table = Table("demo", ["name", "value"])
        table.add_row("alpha", 1.234)
        table.add_row("b", 12345.6)
        text = table.render()
        assert "demo" in text
        assert "alpha" in text
        assert "1.23" in text

    def test_row_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(StatsError):
            table.add_row("only-one")

    def test_format_ns(self):
        assert format_ns(500) == "500.0 ns"
        assert format_ns(1500) == "1.50 us"
        assert format_ns(2.5e6) == "2.50 ms"
        assert format_ns(3e9) == "3.00 s"

    def test_format_bytes(self):
        assert format_bytes(512) == "512.0 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert "MiB" in format_bytes(5 * 1024 * 1024)
