"""Per-function control-flow graphs over Python ASTs.

The flow-aware checkers (:mod:`repro.staticcheck.checkers`) need to
reason about *paths* — "is every store preceded by an open transaction
on **all** paths?" — which the flat ``ast.walk`` view the syntactic
linter uses cannot answer. :func:`build_cfg` lowers one function body
into basic blocks connected by control-flow edges, covering the
constructs the repro tree actually uses: ``if``/``elif``/``else``,
``while``/``for`` (with ``else``), ``try``/``except``/``else``/
``finally``, ``with``, ``break``/``continue``/``return``/``raise``.

Blocks hold *events*, not raw statements, so downstream transfer
functions see control-relevant structure without re-deriving it:

``("stmt", node)``
    A simple statement (assignment, expression, return, ...).
``("test", expr)``
    A branch or loop condition being evaluated.
``("for", node)``
    The loop-header binding of ``node.target`` from ``node.iter``.
``("with-enter", node)`` / ``("with-exit", node)``
    Entry to / normal exit from a ``with`` block — gate checkers treat
    these as scope delimiters.
``("except", handler)``
    Entry into an exception handler (binds ``handler.name``).

Exception edges are approximated conservatively: every block created
while lowering a ``try`` body gets an edge to every handler, so a
must-analysis never assumes a fact that only holds if the body ran to
completion.
"""

import ast

_SIMPLE_STMTS = (
    ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.Pass,
    ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal, ast.Delete,
    ast.Assert,
)


class Block:
    """One basic block: an ordered event list plus CFG edges."""

    __slots__ = ("index", "events", "successors", "predecessors")

    def __init__(self, index):
        self.index = index
        self.events = []
        self.successors = []
        self.predecessors = []

    def add(self, kind, node):
        """Append one ``(kind, node)`` event to the block."""
        self.events.append((kind, node))

    def __repr__(self):
        kinds = ",".join(kind for kind, _ in self.events)
        return "Block(%d, [%s], ->%s)" % (
            self.index, kinds, [b.index for b in self.successors])


class CFG:
    """A function's control-flow graph.

    ``entry`` is the unique entry block, ``exit`` a virtual block every
    terminating path (fall-off, ``return``, uncaught ``raise``) reaches.
    """

    def __init__(self, func, blocks, entry, exit_block):
        self.func = func
        self.blocks = blocks
        self.entry = entry
        self.exit = exit_block

    def reverse_postorder(self):
        """Blocks in reverse postorder from the entry (loop-friendly
        iteration order for forward dataflow)."""
        seen = set()
        order = []

        stack = [(self.entry, iter(self.entry.successors))]
        seen.add(self.entry)
        while stack:
            block, successors = stack[-1]
            advanced = False
            for successor in successors:
                if successor not in seen:
                    seen.add(successor)
                    stack.append((successor, iter(successor.successors)))
                    advanced = True
                    break
            if not advanced:
                order.append(block)
                stack.pop()
        order.reverse()
        return order


class _Frame:
    """Loop bookkeeping: where ``break`` and ``continue`` jump."""

    __slots__ = ("break_target", "continue_target")

    def __init__(self, break_target, continue_target):
        self.break_target = break_target
        self.continue_target = continue_target


class _CfgBuilder:

    def __init__(self, func):
        self.func = func
        self.blocks = []
        self.entry = self._new_block()
        self.exit = self._new_block()
        self.loops = []
        #: Stack of handler-entry block lists for enclosing ``try``s.
        self.handlers = []

    # -- plumbing ---------------------------------------------------------

    def _new_block(self):
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    @staticmethod
    def _connect(src, dst):
        if dst not in src.successors:
            src.successors.append(dst)
            dst.predecessors.append(src)

    def _guard_block(self, block):
        """Wire exception edges for a block living inside ``try`` bodies."""
        for handler_entries in self.handlers:
            for handler_entry in handler_entries:
                self._connect(block, handler_entry)

    # -- lowering ---------------------------------------------------------

    def build(self):
        current = self.entry
        current = self._body(self.func.body, current)
        if current is not None:
            self._connect(current, self.exit)
        return CFG(self.func, self.blocks, self.entry, self.exit)

    def _body(self, statements, current):
        """Lower a statement list; returns the live fall-through block or
        None when every path left (return/raise/break/continue)."""
        for statement in statements:
            if current is None:
                # Unreachable code after a jump: park it in a fresh,
                # disconnected block so its events still exist.
                current = self._new_block()
            current = self._statement(statement, current)
        return current

    def _statement(self, node, current):
        if isinstance(node, ast.If):
            return self._if(node, current)
        if isinstance(node, ast.While):
            return self._while(node, current)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return self._for(node, current)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return self._with(node, current)
        if isinstance(node, ast.Try):
            return self._try(node, current)
        if isinstance(node, ast.Return):
            current.add("stmt", node)
            self._guard_block(current)
            self._connect(current, self.exit)
            return None
        if isinstance(node, ast.Raise):
            current.add("stmt", node)
            self._guard_block(current)
            if not self.handlers:
                self._connect(current, self.exit)
            return None
        if isinstance(node, ast.Break):
            current.add("stmt", node)
            if self.loops:
                self._connect(current, self.loops[-1].break_target)
            return None
        if isinstance(node, ast.Continue):
            current.add("stmt", node)
            if self.loops:
                self._connect(current, self.loops[-1].continue_target)
            return None
        # Nested defs/classes and all simple statements are single events;
        # nested function bodies get their own CFG when the engine visits
        # them, so we do not descend here.
        current.add("stmt", node)
        if isinstance(node, _SIMPLE_STMTS) or isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self._guard_block(current)
        return current

    def _if(self, node, current):
        current.add("test", node.test)
        self._guard_block(current)
        join = self._new_block()

        then_entry = self._new_block()
        self._connect(current, then_entry)
        then_end = self._body(node.body, then_entry)
        if then_end is not None:
            self._connect(then_end, join)

        if node.orelse:
            else_entry = self._new_block()
            self._connect(current, else_entry)
            else_end = self._body(node.orelse, else_entry)
            if else_end is not None:
                self._connect(else_end, join)
        else:
            self._connect(current, join)

        return join if join.predecessors else None

    def _while(self, node, current):
        head = self._new_block()
        self._connect(current, head)
        head.add("test", node.test)
        self._guard_block(head)
        after = self._new_block()

        body_entry = self._new_block()
        self._connect(head, body_entry)
        self.loops.append(_Frame(after, head))
        body_end = self._body(node.body, body_entry)
        self.loops.pop()
        if body_end is not None:
            self._connect(body_end, head)

        if node.orelse:
            else_entry = self._new_block()
            self._connect(head, else_entry)
            else_end = self._body(node.orelse, else_entry)
            if else_end is not None:
                self._connect(else_end, after)
        else:
            self._connect(head, after)
        return after if after.predecessors else None

    def _for(self, node, current):
        head = self._new_block()
        self._connect(current, head)
        head.add("for", node)
        self._guard_block(head)
        after = self._new_block()

        body_entry = self._new_block()
        self._connect(head, body_entry)
        self.loops.append(_Frame(after, head))
        body_end = self._body(node.body, body_entry)
        self.loops.pop()
        if body_end is not None:
            self._connect(body_end, head)

        if node.orelse:
            else_entry = self._new_block()
            self._connect(head, else_entry)
            else_end = self._body(node.orelse, else_entry)
            if else_end is not None:
                self._connect(else_end, after)
        else:
            self._connect(head, after)
        return after if after.predecessors else None

    def _with(self, node, current):
        current.add("with-enter", node)
        self._guard_block(current)
        body_end = self._body(node.body, current)
        if body_end is None:
            return None
        body_end.add("with-exit", node)
        return body_end

    def _try(self, node, current):
        handler_entries = []
        for handler in node.handlers:
            handler_entry = self._new_block()
            handler_entry.add("except", handler)
            handler_entries.append(handler_entry)

        join = self._new_block()

        # Body: every block lowered while the handler frame is pushed
        # gets exception edges to every handler.
        body_entry = self._new_block()
        self._connect(current, body_entry)
        self.handlers.append(handler_entries)
        self._guard_block(body_entry)
        body_end = self._body(node.body, body_entry)
        self.handlers.pop()

        if node.orelse:
            if body_end is not None:
                else_entry = self._new_block()
                self._connect(body_end, else_entry)
                body_end = self._body(node.orelse, else_entry)

        ends = []
        if body_end is not None:
            ends.append(body_end)
        for handler, handler_entry in zip(node.handlers, handler_entries):
            handler_end = self._body(handler.body, handler_entry)
            if handler_end is not None:
                ends.append(handler_end)

        if node.finalbody:
            final_entry = self._new_block()
            for end in ends:
                self._connect(end, final_entry)
            if not ends:
                # All paths jumped, but the finaliser still runs on the
                # exceptional path; keep it reachable conservatively.
                self._connect(current, final_entry)
            final_end = self._body(node.finalbody, final_entry)
            if final_end is None:
                return None
            self._connect(final_end, join)
        else:
            for end in ends:
                self._connect(end, join)

        return join if join.predecessors else None


def build_cfg(func):
    """Build the :class:`CFG` for one ``FunctionDef`` / ``AsyncFunctionDef``."""
    return _CfgBuilder(func).build()
