"""abl-link: AMAT sensitivity to interconnect latency.

The paper's viability argument rests on the device hop being cheap
relative to PM media latency (§5: 25% AMAT overhead at expected CXL
latency; 2x that on Enzian). This sweep varies the one-way hop latency
and reports the AMAT overhead over raw PM — locating where an
accelerator-based design stops making sense.
"""

from repro.analysis.amat import AmatModel, measure_miss_rates
from repro.analysis.report import Table
from repro.sim.latency import default_model

HOPS_NS = (0, 20, 35, 80, 150, 300, 600)


def run():
    rates = measure_miss_rates(record_count=20000, op_count=30000)
    rows = {}
    for hop_ns in HOPS_NS:
        model_cfg = default_model()
        model_cfg.link.cxl_ns = float(hop_ns)
        model = AmatModel(rates, latency=model_cfg)
        rows[hop_ns] = {
            "amat_ns": model.amat_ns("pm_cxl"),
            "overhead": model.cxl_overhead_over_pm() if hop_ns else
            (model.amat_ns("pm_cxl") - model.amat_ns("pm"))
            / model.amat_ns("pm"),
        }
    return rows


def test_link_latency_sweep(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("abl-link: PAX AMAT vs one-way link latency",
                  ["one-way hop (ns)", "AMAT (ns)", "overhead vs PM"])
    for hop_ns in HOPS_NS:
        row = rows[hop_ns]
        table.add_row(hop_ns, row["amat_ns"],
                      "%.0f%%" % (100 * row["overhead"]))
    table.show()
    overheads = [rows[h]["overhead"] for h in HOPS_NS]
    # Monotone in link latency, and bounded by device-processing cost at 0.
    assert overheads == sorted(overheads)
    assert rows[0]["overhead"] < 0.10       # free link: just device proc
    # The paper's CXL estimate (~35 ns hop) lands in the viable zone...
    assert rows[35]["overhead"] < 0.35
    # ...and a sufficiently slow interconnect would not.
    assert rows[600]["overhead"] > 0.8
