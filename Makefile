# Developer entry points. Everything is pure Python; no build step.

PYTHON ?= python

.PHONY: install test bench examples quicktest lint staticcheck \
	staticcheck-interproc fuzz fuzz-smoke perfbench perfbench-pr8 \
	perfbench-compare replay-smoke obs-smoke obs-overhead chaos-smoke \
	sweep sweep-smoke clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

quicktest:
	$(PYTHON) -m pytest tests/ -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Static analysis: project-specific AST lint rules over the simulator
# sources (typed errors, PM write discipline, determinism), then the
# flow-aware checkers (persist-order dominance, determinism taint,
# PM-escape) against the committed baseline; see docs/analysis-tools.md.
lint: staticcheck
	PYTHONPATH=src $(PYTHON) -m repro.lint src/

staticcheck:
	PYTHONPATH=src $(PYTHON) -m repro.staticcheck --interprocedural src/repro

# Incremental-cache drill: a cold whole-program run followed by a warm
# one. The warm run must analyze zero modules and produce byte-identical
# findings JSON, or the summary cache is broken.
staticcheck-interproc:
	rm -rf /tmp/staticcheck-cache-drill
	PYTHONPATH=src $(PYTHON) -m repro.staticcheck --interprocedural \
		--cache-dir /tmp/staticcheck-cache-drill --no-baseline \
		--format json src/repro > /tmp/staticcheck-cold.json; \
		test $$? -eq 1
	PYTHONPATH=src $(PYTHON) -m repro.staticcheck --interprocedural \
		--cache-dir /tmp/staticcheck-cache-drill --no-baseline \
		--format json src/repro 2>/tmp/staticcheck-warm.log \
		> /tmp/staticcheck-warm.json; test $$? -eq 1
	grep -q "re-analyzed 0/" /tmp/staticcheck-warm.log
	cmp /tmp/staticcheck-cold.json /tmp/staticcheck-warm.json

# Crash-consistency fuzzing (crash point x fault plan x structure); see
# docs/faults.md. `fuzz` is the full seeded sweep, `fuzz-smoke` a fast
# fixed-seed subset suitable for CI. SANITIZE=1 attaches PaxSan, the
# dynamic persist-order checker, to every iteration.
SANITIZE ?= 0
ifeq ($(SANITIZE),1)
FUZZ_FLAGS = --sanitize
else
FUZZ_FLAGS =
endif

fuzz:
	PYTHONPATH=src $(PYTHON) -m repro.crashtest.fuzz --iterations 500 --seed 1234 $(FUZZ_FLAGS)
	PYTHONPATH=src $(PYTHON) -m repro.crashtest.fuzz --target autopass --sanitize --iterations 500 --seed 1234 --progress 0

fuzz-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.crashtest.fuzz --iterations 50 --seed 7 --progress 0 $(FUZZ_FLAGS)
	PYTHONPATH=src $(PYTHON) -m repro.crashtest.fuzz --target autopass --sanitize --iterations 50 --seed 7 --progress 0

# Wall-clock performance of the simulator itself (not simulated time);
# see docs/performance.md. `perfbench` regenerates the committed
# baseline BENCH_PR3.json; `perfbench-compare` grades a fresh run
# against it and fails on >30% throughput regression or any simulated-
# time drift.
perfbench:
	PYTHONPATH=src $(PYTHON) -m repro.perfbench --out BENCH_PR3.json

# Both engines (access + trace replay); regenerates the committed
# replay-era baseline. BENCH_PR3.json stays access-only on purpose so
# the PR3 comparison keeps its original shape.
perfbench-pr8:
	PYTHONPATH=src $(PYTHON) -m repro.perfbench --engine access,replay --repeats 3 --out BENCH_PR8.json

perfbench-compare:
	PYTHONPATH=src $(PYTHON) -m repro.perfbench --out /tmp/perfbench-current.json --compare BENCH_PR3.json

# Trace record/replay smoke (docs/performance.md, "Trace replay"):
# record a fixed-seed perfbench cell, replay it through both engines,
# and fail unless fingerprints and the recorded sim_ns all agree.
replay-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.replay record --workload store_heavy \
		--backend pax --ops 4000 --records 800 --seed 7 --out /tmp/replay-smoke.trace
	PYTHONPATH=src $(PYTHON) -m repro.replay info /tmp/replay-smoke.trace
	PYTHONPATH=src $(PYTHON) -m repro.replay verify /tmp/replay-smoke.trace

# Observability (docs/observability.md): `obs-smoke` traces a fixed-seed
# perfbench microworkload, summarizes it, and schema-checks the Chrome
# trace export; `obs-overhead` asserts the tracing-off overhead budget
# and that tracing never moves simulated time.
obs-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.perfbench --ops 2000 --records 400 \
		--workloads store_heavy,mixed --backends pax,pmdk \
		--out /tmp/obs-smoke.json --trace /tmp/obs-trace.jsonl
	PYTHONPATH=src $(PYTHON) -m repro.obs summarize /tmp/obs-trace.jsonl
	PYTHONPATH=src $(PYTHON) -m repro.obs convert /tmp/obs-trace.jsonl --to chrome -o /tmp/obs-trace.json
	PYTHONPATH=src $(PYTHON) -m repro.obs validate /tmp/obs-trace.json

obs-overhead:
	PYTHONPATH=src $(PYTHON) -m repro.obs overhead

# Chaos drill (docs/serving.md): live YCSB traffic through the serving
# harness with 10 mid-traffic crash/recover cycles and a link storm,
# PaxSan attached and events traced. Fails on any lost acknowledged
# write, sanitizer finding, or recovery-deadline breach; the Prometheus
# exposition and JSON record land in /tmp for artifact upload.
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.serve --clients 4 --ops 200 \
		--crashes 10 --storms 2 --seed 42 --deadline-ns 50000000 \
		--sanitize --trace /tmp/chaos-trace.jsonl \
		--metrics /tmp/chaos-metrics.prom --json /tmp/chaos-drill.json

# Experiment grids (docs/experiments.md): a declarative spec expands to
# a backend x workload x mechanism x LLC-size matrix, run record-once/
# replay-many with every replayed cell fingerprint-verified against the
# per-access engine. Both targets exit nonzero on any fingerprint
# mismatch. `sweep` reproduces the full paper grid into SWEEP.json;
# `sweep-smoke` is the reduced deterministic CI grid, whose report is
# byte-identical across same-seed reruns.
sweep:
	PYTHONPATH=src $(PYTHON) -m repro.sweep specs/full-grid.toml \
		--out SWEEP.json --markdown SWEEP.md

sweep-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.sweep specs/smoke-grid.toml \
		--out sweep-smoke.json --markdown sweep-smoke.md

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis examples/ht.pool
	find . -name __pycache__ -type d -exec rm -rf {} +
