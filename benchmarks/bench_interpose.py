"""tab-trap: the cost of interposing on a first store.

Paper §1: write-protection traps cost >1 us on modern x86, while a
coherence-message interposition costs a link round trip (~100 ns class).
Paper §5.1 ("Combining with Paging") adds the counterpoint: paging only
pays on the *first* store per page per epoch, so spatial locality
amortizes the trap.

This bench measures both regimes with raw stores (no structure noise):

* **strided** — one 8 B store per 4 KiB page: every store is a first
  touch; the trap dominates and PAX wins big (the §1 argument);
* **dense** — 64 consecutive lines in each page: the trap amortizes and
  paging becomes competitive (the §5.1 argument).
"""

from benchmarks.conftest import BENCH_CACHES
from repro.analysis.report import Table
from repro.libpax.machine import HostMachine, PaxMachine
from repro.mem.page_table import FaultingAccessor, PagePermission, PageTable
from repro.pm.flush import FlushModel
from repro.util.constants import PAGE_SIZE

PAGES = 64
HEAP = 16 * 1024 * 1024
BASE = 8 * PAGE_SIZE


def _offsets(dense):
    if dense:
        return [BASE + page * PAGE_SIZE + line * 64
                for page in range(PAGES) for line in range(64)]
    return [BASE + page * PAGE_SIZE for page in range(PAGES)]


def pax_cost(dense):
    machine = PaxMachine(pool_size=HEAP, log_size=4 * 1024 * 1024,
                         **BENCH_CACHES)
    mem = machine.mem()
    offsets = _offsets(dense)
    start = machine.now_ns
    for offset in offsets:
        mem.write_u64(offset, offset)
    return (machine.now_ns - start) / len(offsets)


def mprotect_cost(dense):
    machine = HostMachine(media="pm", heap_size=HEAP, **BENCH_CACHES)
    table = PageTable(0, HEAP)
    table.protect_all(PagePermission.READ)
    flush = FlushModel(machine.clock, machine.latency)

    def on_fault(page):
        machine.clock.advance(machine.latency.software.page_fault_ns)
        # Log the old page (NT stores at PM write bandwidth).
        machine.clock.advance(
            PAGE_SIZE * 1e9 / machine.latency.bandwidth.pm_write_bps)
        flush.sfence()
        table.protect(page, PAGE_SIZE, PagePermission.READ_WRITE)

    mem = FaultingAccessor(machine.mem(), table, on_fault)
    offsets = _offsets(dense)
    start = machine.now_ns
    for offset in offsets:
        mem.write_u64(offset, offset)
    return (machine.now_ns - start) / len(offsets)


def pm_direct_cost(dense):
    machine = HostMachine(media="pm", heap_size=HEAP, **BENCH_CACHES)
    mem = machine.mem()
    offsets = _offsets(dense)
    start = machine.now_ns
    for offset in offsets:
        mem.write_u64(offset, offset)
    return (machine.now_ns - start) / len(offsets)


def run(dense):
    return {
        "pax": pax_cost(dense),
        "mprotect": mprotect_cost(dense),
        "pm_direct": pm_direct_cost(dense),
    }


def test_interposition_strided(benchmark):
    """Every store is a first touch: the trap cost is exposed (§1)."""
    costs = benchmark.pedantic(run, args=(False,), rounds=1, iterations=1)
    table = Table("tab-trap: one store per page (worst case for paging)",
                  ["mechanism", "ns/store"])
    table.add_row("PAX (coherence message)", costs["pax"])
    table.add_row("mprotect (page-fault trap)", costs["mprotect"])
    table.add_row("none (PM direct)", costs["pm_direct"])
    table.show()
    assert costs["mprotect"] > costs["pax"]
    # The trap overhead itself is >1 us (paper §1).
    assert costs["mprotect"] - costs["pm_direct"] > 1000


def test_interposition_dense(benchmark):
    """64 stores per page: the trap amortizes (§5.1, 'Combining with
    Paging') and the mechanisms converge."""
    costs = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    table = Table("tab-trap: 64 stores per page (paging's best case)",
                  ["mechanism", "ns/store"])
    table.add_row("PAX (coherence message)", costs["pax"])
    table.add_row("mprotect (page-fault trap)", costs["mprotect"])
    table.add_row("none (PM direct)", costs["pm_direct"])
    table.show()
    strided = run(False)
    amortized_gap = costs["mprotect"] - costs["pm_direct"]
    strided_gap = strided["mprotect"] - strided["pm_direct"]
    assert amortized_gap < strided_gap / 4
