"""abl-tail: request tail latency — what pipelined persist buys (§6).

With blocking group commit, every 64th request eats a multi-microsecond
epoch commit: great median, ugly p99. The pipelined persist moves the
commit off the request path, paying only the snoop phase. PMDK is the
contrast: per-request durability smears the cost across *every* request.
"""

from benchmarks.conftest import bench_backend
from repro.analysis.latency import measure_request_latencies
from repro.analysis.report import Table
from repro.workloads.keys import KeySequence

RECORDS = 8000
OPS = 4000
GROUP = 64


def run_profile(name, persist_mode):
    backend = bench_backend(name)
    load = KeySequence(RECORDS, "sequential", seed=1)
    for index in range(RECORDS):
        backend.put(load.next(), index)
    backend.persist()
    keys = KeySequence(RECORDS, "uniform", seed=2).take(OPS)
    values = list(range(OPS))
    return measure_request_latencies(backend, keys, values,
                                     group_size=GROUP,
                                     persist_mode=persist_mode)


def run():
    return {
        "pax (blocking persist)": run_profile("pax", "blocking"),
        "pax (pipelined persist)": run_profile("pax", "async"),
        "pmdk (per-op durable)": run_profile("pmdk", "none"),
        "pm_direct (no durability)": run_profile("pm_direct", "none"),
    }


def test_tail_latency(benchmark):
    profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("abl-tail: request latency [ns]",
                  ["configuration", "p50", "p95", "p99", "max", "mean"])
    for name, profile in profiles.items():
        summary = profile.summary()
        table.add_row(name, summary["p50"], summary["p95"], summary["p99"],
                      summary["max"], summary["mean"])
    table.show()
    blocking = profiles["pax (blocking persist)"].summary()
    pipelined = profiles["pax (pipelined persist)"].summary()
    pmdk = profiles["pmdk (per-op durable)"].summary()
    direct = profiles["pm_direct (no durability)"].summary()
    # Group commit: medians track PM-direct, the tail holds the commits.
    assert blocking["p50"] < pmdk["p50"]
    assert blocking["p99"] > blocking["p50"] * 3
    # The §6 extension flattens that tail without hurting the median.
    assert pipelined["p99"] < blocking["p99"]
    assert pipelined["p50"] <= blocking["p50"] * 1.2
    # PMDK pays on every request: its p50 is its own p99's neighbourhood.
    assert pmdk["p99"] < pmdk["p50"] * 6
