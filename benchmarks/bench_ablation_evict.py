"""abl-evict: the durable-first eviction policy (paper §3.3).

"The device buffer's eviction policy can try to minimize stalls by
preferring to evict cache lines whose undo log entries are already
durable." The policy matters exactly when the LLC's eviction order
diverges from the first-store (logging) order — which set conflicts cause
in practice. This bench drives the device directly with a shuffled
DirtyEvict stream over a small buffer and a lagging log drain, and counts
the synchronous log pumps each policy forces.

(With an in-order eviction stream the two policies coincide — the FIFO
head is always the oldest record — which the full-workload runs confirm;
see EXPERIMENTS.md.)
"""

from repro.analysis.report import Table
from repro.core.config import PaxConfig
from repro.core.device import PaxDevice
from repro.cxl import messages as msg
from repro.pm.device import PmDevice
from repro.pm.log import ENTRY_SIZE
from repro.pm.pool import Pool
from repro.sim.latency import default_model
from repro.sim.rng import DeterministicRng

VPM_BASE = 1 << 32
LINES = 512
BUFFER = 32


def run_policy(prefer_durable, seed=9):
    pm = PmDevice("pm", 16 * 1024 * 1024)
    pool = Pool.format(pm, log_size=4 * 1024 * 1024)
    config = PaxConfig(writeback_buffer_lines=BUFFER,
                       prefer_durable_eviction=prefer_durable)
    device = PaxDevice(pool, default_model(), config=config,
                       vpm_base=VPM_BASE)
    addrs = [VPM_BASE + index * 64 for index in range(LINES)]
    # Ownership requests in address order fix the logging (seq) order.
    for addr in addrs:
        device.handle_message(msg.RdOwn(addr, need_data=False))
    # The log drains lazily: keep the durable frontier ~halfway behind.
    drained = 0
    rng = DeterministicRng(seed)
    shuffled = list(addrs)
    rng.shuffle(shuffled)
    stall_ns = 0.0
    for index, addr in enumerate(shuffled):
        _resp, service_ns = device.handle_message(
            msg.DirtyEvict(addr, bytes([index % 256]) * 64))
        stall_ns += service_ns
        # Drain roughly one record per two evictions: frontier lags.
        if index % 2 == 0:
            drained += device.undo.drain_budget(ENTRY_SIZE)
    stats = device.writeback.stats
    return {
        "forced_pumps": stats.get("forced_log_pumps"),
        "stalled_evicts": device.stats.get("stalled_evicts"),
        "total_service_us": stall_ns / 1e3,
    }


def run():
    return {"durable-first": run_policy(True),
            "fifo": run_policy(False)}


def test_eviction_policy(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("abl-evict: shuffled evictions, lagging log drain",
                  ["policy", "forced log pumps", "stalled evictions",
                   "total device service (us)"])
    for name, row in results.items():
        table.add_row(name, row["forced_pumps"], row["stalled_evicts"],
                      row["total_service_us"])
    table.show()
    durable = results["durable-first"]
    fifo = results["fifo"]
    # The design point: durable-first avoids most synchronous pumps.
    assert durable["forced_pumps"] < fifo["forced_pumps"]
    assert durable["total_service_us"] <= fifo["total_service_us"]
