"""Clean twin of ``escape_bad.py``.

Raw devices stay private, get wrapped in a ``repro.mem`` accessor
before leaving, or are handed to an owner-subsystem constructor that
takes ownership.  The test suite asserts staticcheck reports nothing
here.
"""

from repro.libpax.machine import HostMachine
from repro.mem.accessor import RawAccessor
from repro.pm.device import PmDevice


class PoolHandle:
    def open(self, path, size):
        device = PmDevice(path, size_bytes=size)
        self._device = device
        return RawAccessor(device)

    def _raw(self):
        return self._device


def build_machine(path, size):
    dev = PmDevice(path, size_bytes=size)
    return HostMachine(pm_device=dev)
