"""Multi-thread throughput modelling — Figure 2b.

Python cannot run the simulator's cores in parallel, so thread scaling is
an explicit analytic model layered on measured single-thread behaviour
(the coarsest substitution in this reproduction; see DESIGN.md §5):

1. **Measure** one thread in full simulation: per-operation latency and
   per-operation media traffic (bytes read/written at the memory device,
   WAL bytes for logging schemes).
2. **Scale** with a roofline: ``n`` threads achieve
   ``min(n / latency_per_op, write_bw / write_bytes_per_op,
   read_bw / read_bytes_per_op)`` operations per second, with an optional
   coherence-contention discount for shared-structure writes.

The paper's Figure 2b shape falls out of the measured inputs: DRAM has
both low latency and a ~100 GB/s ceiling (near-linear to 32 threads); PM
Direct pays 305 ns media latency and a 14 GB/s write ceiling; PMDK
additionally *doubles* its write traffic (WAL + data) and serializes on
fences, which is why PM Direct ends ~2x above it at 32 threads.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.workloads.keys import KeySequence
from repro.workloads.trace import Op, apply_trace

#: Thread counts plotted in Figure 2b.
FIG2B_THREADS = (1, 8, 16, 24, 32)


@dataclass
class SingleThreadProfile:
    """Measured single-thread behaviour of one backend."""

    name: str
    ops: int
    elapsed_ns: float
    media_read_bytes: int
    media_write_bytes: int
    log_bytes: int = 0

    @property
    def per_op_ns(self):
        """Average simulated nanoseconds per operation."""
        return self.elapsed_ns / self.ops if self.ops else 0.0

    @property
    def write_bytes_per_op(self):
        """Media write traffic per operation.

        ``media_write_bytes`` already includes log writes — every scheme's
        log lives on the same PM device — so ``log_bytes`` is reported
        separately but not added here.
        """
        return self.media_write_bytes / self.ops if self.ops else 0.0

    @property
    def read_bytes_per_op(self):
        """Media read traffic per operation."""
        return self.media_read_bytes / self.ops if self.ops else 0.0


def _media_counters(backend):
    """(read_bytes, write_bytes, log_bytes) at this backend's medium."""
    machine = backend.machine
    if hasattr(machine, "pm"):                      # PaxMachine
        device = machine.pm
    else:                                           # HostMachine
        device = machine.memory
    reads = device.stats.get("bytes_read")
    writes = device.stats.get("bytes_written")
    log_bytes = getattr(backend, "wal_bytes", 0) or getattr(
        backend, "log_bytes", 0)
    return reads, writes, log_bytes


def profile_backend(backend, record_count=2000, op_count=4000,
                    group_size=64, distribution="uniform", seed=42):
    """Measure a backend's single-thread write-only profile (Fig 2b shape).

    Loads ``record_count`` records, then replays ``op_count`` uniform
    updates with a persist every ``group_size`` ops (ignored by per-op
    durable schemes, group commit for epoch schemes).
    """
    load_keys = KeySequence(record_count, "sequential", seed=seed)
    for index in range(record_count):
        backend.put(load_keys.next(), index)
    backend.persist()
    reads0, writes0, log0 = _media_counters(backend)
    start_ns = backend.now_ns
    run_keys = KeySequence(record_count, distribution, seed=seed + 1)
    trace = []
    for index in range(op_count):
        trace.append(Op("put", run_keys.next(), index))
        if (index + 1) % group_size == 0:
            trace.append(Op("persist"))
    apply_trace(backend, trace)
    backend.persist()
    elapsed = backend.now_ns - start_ns
    reads1, writes1, log1 = _media_counters(backend)
    return SingleThreadProfile(
        name=backend.name, ops=op_count, elapsed_ns=elapsed,
        media_read_bytes=reads1 - reads0,
        media_write_bytes=writes1 - writes0,
        log_bytes=log1 - log0)


@dataclass
class ScalingModel:
    """Roofline thread-scaling over a single-thread profile."""

    profile: SingleThreadProfile
    read_bw_bps: float
    write_bw_bps: float
    #: Fractional throughput lost per additional thread to coherence
    #: traffic on the shared structure (cross-core invalidations). 2%
    #: per thread reproduces the gentle sublinearity of Fig 2b's curves.
    contention_per_thread: float = 0.02

    def throughput_ops(self, threads):
        """Modelled ops/second at ``threads`` threads."""
        per_op = self.profile.per_op_ns
        if per_op <= 0:
            return 0.0
        scale = threads / (1.0 + self.contention_per_thread * (threads - 1))
        cpu_bound = scale * 1e9 / per_op
        ceilings = [cpu_bound]
        wbytes = self.profile.write_bytes_per_op
        if wbytes > 0:
            ceilings.append(self.write_bw_bps / wbytes)
        rbytes = self.profile.read_bytes_per_op
        if rbytes > 0:
            ceilings.append(self.read_bw_bps / rbytes)
        return min(ceilings)

    def curve(self, threads_list=FIG2B_THREADS):
        """``{threads: mops}`` across the Figure 2b x-axis."""
        return {n: self.throughput_ops(n) / 1e6 for n in threads_list}


@dataclass
class Figure2b:
    """The full figure: one curve per backend."""

    curves: Dict[str, Dict[int, float]] = field(default_factory=dict)
    profiles: Dict[str, SingleThreadProfile] = field(default_factory=dict)

    def add(self, name, model, threads_list=FIG2B_THREADS):
        """Add one backend's modelled curve to the figure."""
        self.profiles[name] = model.profile
        self.curves[name] = model.curve(threads_list)

    def at(self, name, threads):
        """Mops of ``name`` at ``threads`` threads."""
        return self.curves[name][threads]

    def ratio_at(self, numerator, denominator, threads):
        """Throughput ratio between two backends at a thread count."""
        return self.at(numerator, threads) / self.at(denominator, threads)


def figure_2b(backend_factories, record_count=2000, op_count=4000,
              threads_list=FIG2B_THREADS, latency=None):
    """Reproduce Figure 2b for ``{name: factory}`` backends.

    Each factory builds a fresh backend; bandwidth ceilings come from the
    backend's own latency model so ablations can re-aim them.
    """
    figure = Figure2b()
    for name, factory in backend_factories.items():
        backend = factory()
        profile = profile_backend(backend, record_count=record_count,
                                  op_count=op_count)
        lat = backend.machine.latency
        if backend.machine.__class__.__name__ == "HostMachine" \
                and getattr(backend.machine, "media", "") == "dram":
            read_bw = write_bw = lat.bandwidth.dram_bps
        else:
            read_bw = lat.bandwidth.pm_read_bps
            write_bw = lat.bandwidth.pm_write_bps
        model = ScalingModel(profile, read_bw_bps=read_bw,
                             write_bw_bps=write_bw)
        figure.add(name, model, threads_list)
    return figure
