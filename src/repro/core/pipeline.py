"""Pipelined persist: overlapping epochs (paper §6, future work).

The paper: "we believe it may be possible to make persist() fully
non-blocking, so that epochs overlap and threads never stall during
persist(); this is challenging since we cannot modify CPU caches to
retain different cache line versions for epochs."

This module implements that extension for the simulated PAX. The calling
thread blocks only for the *snoop phase* (pulling the epoch's modified
lines out of host caches — unavoidable without versioned caches); log
durability, PM write-back, and the epoch-cell commit all complete in the
background while the application mutates the next epoch.

Correctness argument (the subtle part):

* When epoch N+1 takes ownership of a line X that epoch N also touched,
  the undo record's pre-image is the *newest device-visible value* —
  which is N's value, sitting in the write-back buffer from N's snoop
  phase — not the (possibly stale) PM contents.
* N+1's store may then overwrite X's buffered N-value before it ever
  reaches PM. That is safe **iff** N+1's undo record (carrying N's value)
  is durable by the time N commits: recovery rolling back epochs > N
  re-materializes X = N-value from that record.
* Therefore epoch N may commit only when every line it touched is
  *satisfied*: written to PM (the normal case), or superseded in the
  buffer by a later-epoch entry whose undo record is already durable.
* Epochs commit strictly in order, and the undo log region is rewound
  only at a quiescent point (no in-flight epoch, no pending records, no
  touches in the open epoch), so recovery may see records from several
  uncommitted epochs — it rolls all of them back, newest first
  (:mod:`repro.core.recovery` handles multi-epoch logs).
"""

from repro.errors import ProtocolError
from repro.util.stats import StatGroup


class InFlightEpoch:
    """One epoch whose snoop phase finished but whose commit is pending."""

    __slots__ = ("epoch", "max_seq", "pending_lines", "committed")

    def __init__(self, epoch, max_seq, touched_lines):
        self.epoch = epoch
        self.max_seq = max_seq
        self.pending_lines = set(touched_lines)
        self.committed = False

    def poll(self, device):
        """Drop satisfied lines; return True when the epoch may commit."""
        writeback = device.writeback
        undo = device.undo
        satisfied = []
        for line in self.pending_lines:
            entry_data = writeback._buffer.get(line)
            if entry_data is None:
                # Not buffered: the line's value reached PM under the
                # durability gate (or the host never held it dirty and PM
                # was already current).
                satisfied.append(line)
            elif entry_data.seq > self.max_seq:
                # Superseded by a later epoch: safe once that epoch's
                # record (whose pre-image is *this* epoch's value) is
                # durable.
                if undo.is_durable(entry_data.seq):
                    satisfied.append(line)
            elif undo.is_durable(entry_data.seq):
                # Our own record is durable; the line is merely waiting
                # for background write-back. Nudge it out now so commit
                # does not depend on drain pacing.
                writeback.drain_budget(0)       # no-op budget-wise
                data = writeback._buffer.pop(line, None)
                if data is not None:
                    writeback._write_to_pm(line, data.data)
                satisfied.append(line)
        for line in satisfied:
            self.pending_lines.discard(line)
        return not self.pending_lines

    def __repr__(self):
        return "InFlightEpoch(%d, %d lines pending)" % (
            self.epoch, len(self.pending_lines))


class PersistPipeline:
    """Orders and retires in-flight epochs for one device."""

    def __init__(self, device):
        self._device = device
        self._flights = []
        self.stats = StatGroup("persist_pipeline")

    @property
    def depth(self):
        """Number of epochs snooped but not yet committed."""
        return len(self._flights)

    def begin(self, snoop_port, clock=None):
        """Run the snoop phase for the open epoch; open the next one.

        Returns ``(flight, host_blocking_ns)`` — the host pays only for
        the snoops. With ``clock`` given, time is charged per snoop (the
        round trips are sequential, so link backlog drains between them)
        and the caller must not advance the clock again.
        """
        device = self._device
        blocking_ns = 0.0
        touched = device.undo.touched_lines()
        max_seq = 0
        for pool_addr in touched:
            seq = device.undo.seq_for(pool_addr)
            max_seq = max(max_seq, seq)
            fresh, link_ns = snoop_port.snoop_shared(device.to_phys(pool_addr))
            blocking_ns += link_ns
            if clock is not None:
                clock.advance(link_ns)
            if fresh is not None:
                device.writeback.buffer_line(pool_addr, fresh, seq)
        flight = InFlightEpoch(device.epochs.current_epoch, max_seq, touched)
        self._flights.append(flight)
        # Open the next epoch immediately; records of the snooped epoch
        # may still sit in the volatile tail (they drain in order before
        # any newer record, which the commit rule relies on).
        device.epochs.current_epoch += 1
        device.undo.begin_epoch(device.epochs.current_epoch,
                                allow_pending=True)
        self.stats.counter("begun").add(1)
        return flight, blocking_ns

    def poll(self):
        """Retire every leading flight whose lines are all satisfied."""
        retired = 0
        while self._flights and self._flights[0].poll(self._device):
            flight = self._flights.pop(0)
            self._device.pool.commit_epoch(flight.epoch)
            flight.committed = True
            retired += 1
            self.stats.counter("committed").add(1)
        if retired:
            self._maybe_rewind()
        return retired

    def _maybe_rewind(self):
        """Rewind the log region at a quiescent point to bound growth."""
        device = self._device
        if (not self._flights and device.undo.pending_count == 0
                and not device.undo.touched_lines()):
            device.region.reset()
            self.stats.counter("rewinds").add(1)

    def complete_all(self):
        """Force every in-flight epoch to commit (barrier semantics).

        Returns the simulated ns of forced synchronous work (log pump).
        """
        if not self._flights:
            return 0.0
        pumped = self._device.undo.pump()
        forced_ns = pumped * 1e9 / self._device.config.log_drain_bps
        self.poll()
        if self._flights:
            raise ProtocolError(
                "in-flight epochs remain after a full log pump: %r"
                % self._flights)
        return forced_ns

    def on_crash(self):
        """In-flight bookkeeping is volatile; recovery re-derives truth."""
        self._flights.clear()
