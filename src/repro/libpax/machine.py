"""Simulated machines: CPU + caches + interconnect + memory/device.

Two machine shapes cover every configuration in the paper's evaluation:

* :class:`PaxMachine` — host cores in front of a coherent hierarchy whose
  vPM range is homed at a :class:`~repro.core.device.PaxDevice` across a
  CXL (or Enzian) link. This is "PM via CXL/Enzian" in Figure 2a and the
  PAX rows everywhere else.
* :class:`HostMachine` — the same hierarchy with a plain host-attached
  medium (DRAM, or PM behind the host memory controller). These are the
  "DRAM" and "PM Direct" configurations, and the substrate under the
  PMDK / mprotect / compiler-pass baselines.

Both expose *structure space*: data structures address bytes in
``[0, heap_size)`` (0 = NULL) through a :class:`CpuAccessor`, and the
machine maps that onto physical addresses. Structure space is what makes
the same structure code run on every machine — the reproduction of the
paper's black-box reuse property.
"""

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.homes import Home, HostHome
from repro.core.device import PaxDevice
from repro.core.recovery import recover_pool
from repro.cxl.link import CxlLink
from repro.cxl.lossy import LossyLink
from repro.cxl.port import DevicePort, HostSnoopPort, MemDevicePort
from repro.errors import ConfigError, CrashedError
from repro.mem.accessor import MemoryAccessor
from repro.mem.address_space import AddressSpace
from repro.mem.physical import DramDevice
from repro.pm.device import PmDevice
from repro.pm.pool import Pool
from repro.sim.bandwidth import BandwidthLimiter
from repro.sim.clock import SimClock
from repro.sim.rng import DeterministicRng
from repro.sim.latency import default_model
from repro.util.stats import StatGroup

#: Fixed physical base where every machine maps its heap/vPM region.
#: Fixed (like a DAX mapping at a hint address) so that pointers stored in
#: a pool remain valid across restarts.
HEAP_PHYS_BASE = 1 << 32


class CpuAccessor(MemoryAccessor):
    """Loads/stores issued by one core, translated into the hierarchy.

    Addresses are structure-space offsets; the accessor adds the machine's
    physical base. Every access goes through the coherent cache hierarchy
    and charges simulated time.
    """

    def __init__(self, machine, core_id=0):
        if not 0 <= core_id < machine.hierarchy.num_cores:
            raise ConfigError("machine has no core %d" % core_id)
        self._machine = machine
        self._core = core_id

    def read(self, addr, length):
        machine = self._machine
        machine.check_alive()
        return machine.hierarchy.load(self._core, addr + HEAP_PHYS_BASE,
                                      length)

    def write(self, addr, data):
        machine = self._machine
        machine.check_alive()
        if machine.store_hook is not None:
            machine.store_hook(addr, data)
        machine.hierarchy.store(self._core, addr + HEAP_PHYS_BASE, data)


class PaxHome(Home):
    """The cache hierarchy's view of the PAX device, across the link.

    Never grants E: the device must observe the first store to every line
    (paper §3.2) — a silent E->M upgrade would skip undo logging.
    """

    grants_exclusive = False

    def __init__(self, port):
        self._port = port

    def acquire(self, line_addr, exclusive, need_data):
        if exclusive:
            return self._port.read_own(line_addr, need_data)
        return self._port.read_shared(line_addr)

    def writeback(self, line_addr, data):
        return self._port.evict_dirty(line_addr, data)


class PaxMemHome(Home):
    """The hierarchy's view of a CXL.mem-mode PAX device (paper §6).

    The device is plain memory to the coherence protocol: E grants are
    host-internal (silent E->M is fine — the device logs at write-back,
    not at ownership), upgrades never reach the device, and there is no
    snoop channel back.
    """

    grants_exclusive = True

    def __init__(self, port):
        self._port = port

    def acquire(self, line_addr, exclusive, need_data):
        if not need_data:
            # Host-internal permission change; the device never hears it.
            return None, 0.0
        return self._port.read_line(line_addr)

    def writeback(self, line_addr, data):
        return self._port.write_line(line_addr, data)


class _BaseMachine:
    """State shared by both machine shapes."""

    def __init__(self, latency=None, num_cores=1, clock=None,
                 l1_config=None, l2_config=None, llc_config=None,
                 mechanisms=None, mech_policy="lru"):
        self.latency = (latency or default_model()).validate()
        self.clock = clock or SimClock()
        self._cache_kwargs = dict(num_cores=num_cores, l1_config=l1_config,
                                  l2_config=l2_config, llc_config=llc_config,
                                  mechanisms=mechanisms,
                                  mech_policy=mech_policy)
        self.hierarchy = self._fresh_hierarchy()
        self.crashed = False
        #: Optional callable invoked before every CPU store (crash-point
        #: injection; see :mod:`repro.crashtest.injector`).
        self.store_hook = None
        #: Optional :class:`~repro.sanitizer.base.Tracer` observing the
        #: machine's persist-relevant events (see attach_tracer).
        self.tracer = None
        self.stats = StatGroup(type(self).__name__)

    def _fresh_hierarchy(self):
        return CacheHierarchy(self.clock, self.latency, **self._cache_kwargs)

    def attach_tracer(self, tracer):
        """Wire ``tracer`` into every instrumented component.

        The wiring survives :meth:`restart` — components that are rebuilt
        on reboot (the hierarchy, and on :class:`PaxMachine` the device)
        are re-propagated to before ``on_machine_restart`` fires.
        """
        self.tracer = tracer
        self._propagate_tracer()

    def _propagate_tracer(self):
        """Push the tracer into components (rebuilt ones included)."""
        self.hierarchy.tracer = self.tracer

    def check_alive(self):
        if self.crashed:
            raise CrashedError(
                "machine has crashed; call restart() before further access")

    def mem(self, core_id=0):
        """A :class:`CpuAccessor` for structure space on ``core_id``."""
        return CpuAccessor(self, core_id)

    @property
    def now_ns(self):
        """Current simulated time."""
        return self.clock.now_ns


class PaxMachine(_BaseMachine):
    """Host CPU + coherent caches + CXL/Enzian link + PAX device + PM pool."""

    PROTOCOLS = ("cxl.cache", "cxl.mem")

    def __init__(self, pool_size=64 * 1024 * 1024, log_size=4 * 1024 * 1024,
                 backing_path=None, link="cxl", pax_config=None,
                 protocol="cxl.cache", latency=None, num_cores=1, clock=None,
                 l1_config=None, l2_config=None, llc_config=None,
                 pm_device=None, link_faults=None,
                 mechanisms=None, mech_policy="lru"):
        super().__init__(latency=latency, num_cores=num_cores, clock=clock,
                         l1_config=l1_config, l2_config=l2_config,
                         llc_config=llc_config, mechanisms=mechanisms,
                         mech_policy=mech_policy)
        if protocol not in self.PROTOCOLS:
            raise ConfigError("protocol must be one of %r" % (self.PROTOCOLS,))
        self.protocol = protocol
        self.link_name = link
        self._link_faults = link_faults.validate() if link_faults else None
        # One rng for the machine's lifetime: a restart rebuilds the link
        # wrapper but must not replay the identical drop sequence.
        self._link_rng = (DeterministicRng(link_faults.seed)
                          if link_faults else None)
        self._pax_config = pax_config
        # ``pm_device`` lets a machine adopt an existing PM device — the
        # replication failover path brings a replica's device online.
        self.pm = pm_device or PmDevice("pm0", pool_size,
                                        backing_path=backing_path)
        self.pool = Pool.open_or_format(self.pm, log_size=log_size)
        # Recovery runs before anything touches the pool (paper §3.4); on
        # a fresh pool it is a no-op (and charges zero simulated time).
        self.recovery_report = self._recover(deadline_ns=None)
        self._bring_up_device()

    def _recover(self, deadline_ns):
        """Timed recovery: scan/rollback costs charge the machine clock."""
        return recover_pool(self.pool, clock=self.clock,
                            scan_ns=self.latency.media.pm_read_ns,
                            write_ns=self.latency.media.pm_write_ns,
                            deadline_ns=deadline_ns)

    def _bring_up_device(self):
        self.device = PaxDevice(self.pool, self.latency,
                                config=self._pax_config,
                                vpm_base=HEAP_PHYS_BASE)
        self.link = CxlLink.from_model(self.link_name, self.clock, self.latency)
        if self._link_faults is not None:
            self.link = LossyLink(self.link, self._link_faults,
                                  rng=self._link_rng)
        if self.protocol == "cxl.mem":
            self.port = MemDevicePort(self.link, self.device)
            self.snoop_port = None       # CXL.mem has no snoop channel
            home = PaxMemHome(self.port)
        else:
            self.port = DevicePort(self.link, self.device)
            self.snoop_port = HostSnoopPort(self.link, self.hierarchy)
            home = PaxHome(self.port)
        self.hierarchy.add_home(HEAP_PHYS_BASE, self.pool.data_size, home)
        self._tick = self.device.background_tick
        self.clock.on_advance(self._tick)

    def _propagate_tracer(self):
        super()._propagate_tracer()
        self.pm.tracer = self.tracer
        self.pool.tracer = self.tracer
        self.device.undo.tracer = self.tracer
        self.link.tracer = self.tracer

    @property
    def heap_size(self):
        """Bytes of structure space available."""
        return self.pool.data_size

    def persist(self):
        """Commit a crash-consistent snapshot (Listing 1, line 6).

        Blocks the calling thread for the full group-commit latency and
        returns that latency in nanoseconds.
        """
        self.check_alive()
        tracer = self.tracer
        start_ns = self.clock.now_ns if tracer is not None else 0
        if self.protocol == "cxl.mem":
            latency = self._persist_mem()
        else:
            latency = self.device.persist(self.snoop_port, clock=self.clock)
        if tracer is not None:
            # current_epoch (a plain attribute) rather than the pool's
            # committed_epoch property: the latter issues device reads,
            # which would perturb counters relative to an untraced run.
            tracer.on_span("epoch-commit", "persist", start_ns, latency,
                           {"epoch": self.device.epochs.current_epoch - 1})
        self.stats.counter("persists").add(1)
        return latency

    def _persist_mem(self):
        """CXL.mem persist: the *host* must flush its dirty vPM lines.

        Without a device snoop channel (paper §6: CXL.mem "does not have
        as much visibility into coherence as CXL.cache"), the library
        issues CLWB per dirty line — the serialized, cycle-consuming path
        the paper's CXL.cache design avoids — then tells the device to
        drain and commit.
        """
        start = self.clock.now_ns
        for line in self.hierarchy.dirty_lines():
            self.clock.advance(self.latency.software.clwb_ns)
            self.hierarchy.writeback_line(line)    # charges MemWr + link
        self.clock.advance(self.latency.software.sfence_ns)
        self.device.persist_mem(clock=self.clock)
        return self.clock.now_ns - start

    def persist_async(self):
        """Pipelined persist (paper §6 extension): block only for snoops.

        Returns the in-flight epoch handle; ``handle.committed`` flips as
        background draining completes (simulated time must pass — any
        further accesses, or :meth:`persist_barrier`, provide it).
        """
        self.check_alive()
        if self.protocol == "cxl.mem":
            raise ConfigError(
                "pipelined persist needs the CXL.cache snoop channel; "
                "CXL.mem mode supports blocking persist() only")
        flight, _blocking_ns = self.device.persist_async(
            self.snoop_port, clock=self.clock)
        self.stats.counter("persist_asyncs").add(1)
        return flight

    def persist_barrier(self):
        """Wait (in simulated time) until every in-flight epoch commits."""
        self.check_alive()
        forced_ns = self.device.pipeline.complete_all()
        if forced_ns:
            self.clock.advance(forced_ns)
        return forced_ns

    def crash(self):
        """Power failure: lose every volatile byte (caches, device SRAM)."""
        if self.tracer is not None:
            self.tracer.on_machine_crash()
        self.hierarchy.drop_all()
        self.device.on_crash()
        self.clock.remove_callback(self._tick)
        self.crashed = True
        self.stats.counter("crashes").add(1)

    def restart(self, recovery_deadline_ns=None):
        """Reboot after a crash: recover the pool, rebuild volatile state.

        Returns the :class:`~repro.core.recovery.RecoveryReport`; its
        ``elapsed_ns`` is the simulated time recovery charged. With
        ``recovery_deadline_ns``, a recovery that blows the budget raises
        :class:`~repro.errors.RecoveryTimeout` — after the pool is
        consistent, but before volatile state is rebuilt, so the machine
        is still ``crashed`` and a deadline-free ``restart()`` retry
        finishes bring-up (idempotent: the log was already reset).
        """
        if not self.crashed:
            raise CrashedError("restart() is only valid after crash()")
        # A fresh hierarchy models the rebooted host.
        self.hierarchy = self._fresh_hierarchy()
        self.recovery_report = self._recover(deadline_ns=recovery_deadline_ns)
        self._bring_up_device()
        self.crashed = False
        self._propagate_tracer()
        if self.tracer is not None:
            self.tracer.on_machine_restart()
        self.stats.counter("restarts").add(1)
        return self.recovery_report

    def close(self):
        """Flush the pool to its backing file (if any)."""
        self.pool.sync()


class HostMachine(_BaseMachine):
    """Host CPU + caches over host-attached DRAM or PM (no accelerator)."""

    MEDIA = ("dram", "pm")

    def __init__(self, media="dram", heap_size=64 * 1024 * 1024,
                 latency=None, num_cores=1, clock=None, share_bandwidth=True,
                 l1_config=None, l2_config=None, llc_config=None,
                 mechanisms=None, mech_policy="lru"):
        super().__init__(latency=latency, num_cores=num_cores, clock=clock,
                         l1_config=l1_config, l2_config=l2_config,
                         llc_config=llc_config, mechanisms=mechanisms,
                         mech_policy=mech_policy)
        if media not in self.MEDIA:
            raise ConfigError("media must be one of %r" % (self.MEDIA,))
        self.media = media
        self.space = AddressSpace()
        if media == "dram":
            self.memory = DramDevice("dram0", heap_size)
            read_ns = write_ns = self.latency.media.dram_ns
            read_bps = write_bps = self.latency.bandwidth.dram_bps
        else:
            self.memory = PmDevice("pm0", heap_size)
            read_ns = self.latency.media.pm_read_ns
            write_ns = self.latency.media.pm_write_ns
            read_bps = self.latency.bandwidth.pm_read_bps
            write_bps = self.latency.bandwidth.pm_write_bps
        self.space.map_device(HEAP_PHYS_BASE, self.memory)
        read_limiter = (BandwidthLimiter("media.read", self.clock, read_bps)
                        if share_bandwidth else None)
        write_limiter = (BandwidthLimiter("media.write", self.clock, write_bps)
                         if share_bandwidth else None)
        self.home = HostHome(media, self.space, read_ns, write_ns,
                             read_limiter=read_limiter,
                             write_limiter=write_limiter)
        self.hierarchy.add_home(HEAP_PHYS_BASE, heap_size, self.home)
        self.heap_size = heap_size

    def crash(self):
        """Power failure: caches are lost; PM keeps what reached it."""
        if self.tracer is not None:
            self.tracer.on_machine_crash()
        self.hierarchy.drop_all()
        if self.media == "dram":
            self.memory.on_crash()
        self.crashed = True
        self.stats.counter("crashes").add(1)

    def restart(self):
        """Reboot: fresh caches over whatever the medium retained."""
        self.hierarchy = self._fresh_hierarchy()
        self.hierarchy.add_home(HEAP_PHYS_BASE, self.heap_size, self.home)
        self.crashed = False
        self._propagate_tracer()
        if self.tracer is not None:
            self.tracer.on_machine_restart()
        self.stats.counter("restarts").add(1)
