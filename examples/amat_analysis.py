#!/usr/bin/env python3
"""Figure 2a on your laptop: AMAT for DRAM / PM / PM-via-CXL / PM-via-Enzian.

Measures hash-table get() miss rates on the cache simulator, combines
them with published media latencies (the paper's §5 method), and prints
the four bars plus the two headline ratios. Also sweeps the device HBM
hit rate to show where a warm device cache takes PAX.
"""

from repro.analysis.amat import AmatModel, CONFIGS, measure_miss_rates
from repro.analysis.report import Table

LABELS = {
    "dram": "DRAM (volatile)",
    "pm": "PM direct (unsafe)",
    "pm_cxl": "PM via CXL PAX",
    "pm_enzian": "PM via Enzian PAX",
}


def main():
    print("measuring miss rates (hash table get(), uniform keys)...")
    rates = measure_miss_rates(record_count=20000, op_count=30000)
    print("  L1 miss %.1f%%, L2 miss %.1f%%, LLC miss %.1f%%"
          % (100 * rates.l1_miss_rate, 100 * rates.l2_miss_rate,
             100 * rates.llc_miss_rate))

    model = AmatModel(rates)
    table = Table("Figure 2a: estimated AMAT", ["configuration", "ns"])
    for config in CONFIGS:
        table.add_row(LABELS[config], model.amat_ns(config))
    table.show()
    print()
    print("CXL PAX adds %.0f%% to AMAT over raw PM (paper estimate: ~25%%)"
          % (100 * model.cxl_overhead_over_pm()))
    print("Enzian overhead is %.1fx the CXL overhead (paper estimate: ~2x)"
          % model.enzian_overhead_ratio())

    table = Table("PM-via-CXL AMAT vs device HBM hit rate",
                  ["HBM hit rate", "AMAT (ns)"])
    for hit_rate in (0.0, 0.25, 0.5, 0.75, 1.0):
        warm = AmatModel(rates, hbm_hit_rate=hit_rate)
        table.add_row("%.0f%%" % (100 * hit_rate), warm.amat_ns("pm_cxl"))
    table.show()


if __name__ == "__main__":
    main()
