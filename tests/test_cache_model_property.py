"""The cache hierarchy against a flat-memory reference model.

Hypothesis drives random multi-core loads, stores, snoops, CLWBs, and
eADR flushes; a plain dict shadows what the memory contents *should* be.
After every step, loads through the hierarchy must agree with the model,
and after a flush+drop, the home must hold exactly the model.

This is the broadest net for coherence bugs: any lost update, stale
forward, or aliasing mistake shows up as a divergence.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.homes import HostHome
from repro.mem.address_space import AddressSpace
from repro.mem.physical import MemoryDevice
from repro.sim.clock import SimClock
from repro.sim.latency import default_model

BASE = 0x100000
LINES = 32           # small range: lots of conflict and reuse
CORES = 3


def build():
    clock = SimClock()
    lat = default_model()
    space = AddressSpace()
    space.map_device(BASE, MemoryDevice("m", LINES * 64))
    hierarchy = CacheHierarchy(
        clock, lat, num_cores=CORES,
        l1_config=CacheConfig(512, 2),       # 8 lines
        l2_config=CacheConfig(1024, 2),      # 16 lines
        llc_config=CacheConfig(1024, 4))
    home = HostHome("m", space, lat.media.dram_ns, lat.media.dram_ns)
    hierarchy.add_home(BASE, LINES * 64, home)
    return hierarchy, space


#: Loads/stores at 8-byte-aligned offsets: the reference dict models
#: whole words, so overlapping partial writes would need a byte-level
#: model (covered separately by the accessor tests).
_word = st.integers(0, LINES * 8 - 1).map(lambda w: w * 8)

operation = st.one_of(
    st.tuples(st.just("load"), st.integers(0, CORES - 1), _word),
    st.tuples(st.just("store"), st.integers(0, CORES - 1), _word),
    st.tuples(st.just("snoop_s"), st.just(0),
              st.integers(0, LINES - 1)),
    st.tuples(st.just("snoop_i"), st.just(0),
              st.integers(0, LINES - 1)),
    st.tuples(st.just("clwb"), st.just(0),
              st.integers(0, LINES - 1)),
)


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(operation, max_size=120))
def test_hierarchy_matches_reference_model(ops):
    hierarchy, space = build()
    model = {}
    counter = 0
    for kind, core, arg in ops:
        if kind == "store":
            counter += 1
            value = counter.to_bytes(8, "little")
            hierarchy.store(core, BASE + arg, value)
            model[arg] = value
        elif kind == "load":
            got = hierarchy.load(core, BASE + arg, 8)
            want = model.get(arg, None)
            if want is not None:
                assert got == want, "load divergence at +0x%x" % arg
        elif kind == "snoop_s":
            # Contract: the snooper (the PAX device) takes custody of any
            # dirty data returned and writes it home itself.
            fresh = hierarchy.snoop_shared(BASE + arg * 64)
            if fresh is not None:
                space.write(BASE + arg * 64, fresh)
        elif kind == "snoop_i":
            fresh = hierarchy.snoop_invalidate(BASE + arg * 64)
            if fresh is not None:
                space.write(BASE + arg * 64, fresh)
        elif kind == "clwb":
            hierarchy.writeback_line(BASE + arg * 64)
    # Flush everything; the home must now hold the model exactly.
    hierarchy.flush_all()
    hierarchy.drop_all()
    for offset, value in model.items():
        assert space.read(BASE + offset, 8) == value, (
            "home divergence at +0x%x after flush" % offset)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(operation, max_size=100),
       eadr=st.booleans())
def test_crash_semantics_vs_model(ops, eadr):
    # ADR: post-crash memory holds some prefix-consistent mix (each line
    # is either its last written-back value or its last stored value —
    # never garbage). eADR: exactly the model.
    hierarchy, space = build()
    model = {}
    counter = 0
    for kind, core, arg in ops:
        if kind == "store":
            counter += 1
            value = counter.to_bytes(8, "little")
            hierarchy.store(core, BASE + arg, value)
            model[arg] = value
        elif kind == "load":
            hierarchy.load(core, BASE + arg, 8)
        elif kind == "snoop_s":
            fresh = hierarchy.snoop_shared(BASE + arg * 64)
            if fresh is not None:
                space.write(BASE + arg * 64, fresh)
        elif kind == "snoop_i":
            fresh = hierarchy.snoop_invalidate(BASE + arg * 64)
            if fresh is not None:
                space.write(BASE + arg * 64, fresh)
        elif kind == "clwb":
            hierarchy.writeback_line(BASE + arg * 64)
    if eadr:
        hierarchy.flush_all()
    hierarchy.drop_all()
    for offset, value in model.items():
        got = space.read(BASE + offset, 8)
        if eadr:
            assert got == value
        else:
            # ADR: either the newest value made it out, or an older value
            # (possibly zero) remains — but never bytes never written.
            assert got == value or int.from_bytes(got, "little") <= counter
