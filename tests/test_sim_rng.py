"""Deterministic RNG and the zipfian/uniform generators."""

from collections import Counter

import pytest

from repro.errors import ConfigError
from repro.sim.rng import DeterministicRng, UniformGenerator, ZipfianGenerator


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.randint(0, 100) for _ in range(20)] == \
               [b.randint(0, 100) for _ in range(20)]

    def test_different_seeds_diverge(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != \
               [b.randint(0, 10**9) for _ in range(5)]

    def test_fork_is_deterministic_and_independent(self):
        parent = DeterministicRng(42)
        child_a = parent.fork("thread-0")
        child_b = DeterministicRng(42).fork("thread-0")
        assert [child_a.randint(0, 100) for _ in range(10)] == \
               [child_b.randint(0, 100) for _ in range(10)]

    def test_bytes(self):
        rng = DeterministicRng(1)
        assert len(rng.bytes(16)) == 16
        assert rng.bytes(0) == b""


class TestZipfian:
    def test_domain_respected(self):
        gen = ZipfianGenerator(100, rng=DeterministicRng(3))
        values = [gen.next() for _ in range(2000)]
        assert all(0 <= v < 100 for v in values)

    def test_skew_concentrates_mass(self):
        gen = ZipfianGenerator(1000, theta=0.99, scrambled=False,
                               rng=DeterministicRng(5))
        counts = Counter(gen.next() for _ in range(20000))
        top = sum(count for _v, count in counts.most_common(10))
        # Zipf(0.99): the 10 hottest of 1000 keys draw a large share.
        assert top / 20000 > 0.3

    def test_unscrambled_rank_zero_hottest(self):
        gen = ZipfianGenerator(1000, scrambled=False,
                               rng=DeterministicRng(5))
        counts = Counter(gen.next() for _ in range(20000))
        assert counts.most_common(1)[0][0] == 0

    def test_scramble_spreads_hot_keys(self):
        gen = ZipfianGenerator(1000, scrambled=True,
                               rng=DeterministicRng(5))
        counts = Counter(gen.next() for _ in range(20000))
        hottest = counts.most_common(1)[0][0]
        assert hottest != 0   # scrambled away from rank order

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            ZipfianGenerator(0)
        with pytest.raises(ConfigError):
            ZipfianGenerator(10, theta=1.5)

    def test_large_domain_constructs(self):
        gen = ZipfianGenerator(10_000_000, rng=DeterministicRng(1))
        assert 0 <= gen.next() < 10_000_000


class TestUniform:
    def test_domain(self):
        gen = UniformGenerator(50, DeterministicRng(1))
        assert all(0 <= gen.next() < 50 for _ in range(500))

    def test_roughly_uniform(self):
        gen = UniformGenerator(10, DeterministicRng(2))
        counts = Counter(gen.next() for _ in range(10000))
        assert min(counts.values()) > 700   # each bin ~1000

    def test_empty_domain_rejected(self):
        with pytest.raises(ConfigError):
            UniformGenerator(0)
