"""Documentation gate: every public item in the library has a docstring.

Deliverable (e) made enforceable: modules, public classes, public
methods, and public functions across ``repro`` must carry docstrings.
Private names (leading underscore), dunders other than ``__init__``'s
class, and trivial inherited members are exempt.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_METHODS = {
    # dunders and stdlib-conventional names whose behaviour is defined by
    # the protocol they implement.
    "__init__", "__repr__", "__len__", "__iter__", "__contains__",
    "__getitem__", "__setitem__", "__enter__", "__exit__", "__eq__",
    "__hash__", "__getattr__", "__post_init__",
}


def _all_modules():
    names = []
    for module_info in pkgutil.walk_packages(repro.__path__,
                                             prefix="repro."):
        names.append(module_info.name)
    return sorted(names)


MODULES = _all_modules()


def _inherits_documented_contract(cls, method_name):
    for base in cls.__mro__[1:]:
        member = base.__dict__.get(method_name)
        if member is None:
            continue
        func = member
        if isinstance(member, (staticmethod, classmethod)):
            func = member.__func__
        elif isinstance(member, property):
            func = member.fget
        if getattr(func, "__doc__", None) and func.__doc__.strip():
            return True
    return False


def test_every_module_found():
    assert len(MODULES) > 40


@pytest.mark.parametrize("module_name", MODULES)
def test_module_and_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        "%s has no module docstring" % module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue        # re-export; documented at its home
        if inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                missing.append("%s.%s" % (module_name, name))
            for method_name, member in vars(obj).items():
                if method_name.startswith("_") \
                        and method_name not in ("__init__",):
                    continue
                if method_name in SKIP_METHODS:
                    continue
                if _inherits_documented_contract(obj, method_name):
                    # An override of a documented base-class method
                    # carries the base's contract.
                    continue
                func = member
                if isinstance(member, (staticmethod, classmethod)):
                    func = member.__func__
                elif isinstance(member, property):
                    func = member.fget
                if not callable(func):
                    continue
                if not (getattr(func, "__doc__", None)
                        and func.__doc__.strip()):
                    missing.append("%s.%s.%s" % (module_name, name,
                                                 method_name))
        elif inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                missing.append("%s.%s" % (module_name, name))
    assert not missing, "undocumented public items:\n  " + \
        "\n  ".join(missing)
