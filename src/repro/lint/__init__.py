"""Project linter: static AST checks for the repro codebase.

``python -m repro.lint src/`` parses every Python file under the given
paths and runs a plugin catalogue of project-specific rules — the bug
classes the PAX paper argues hand-written PM code keeps reintroducing
(see docs/analysis-tools.md):

``typed-errors``
    Raise :class:`~repro.errors.ReproError` subclasses, never bare
    builtins, so callers can catch one base class.
``pm-direct-write``
    Only sanctioned modules may write the PM device directly; everything
    else must go through the cache hierarchy or an accessor, or PaxSan
    (and the paper's write-interposition argument) loses visibility.
``sim-determinism``
    No wall-clock or ambient randomness in simulation code; time comes
    from ``sim.clock`` and randomness from ``sim.rng``.
``mutable-default``
    No mutable default arguments.

Findings can be suppressed per line with ``# lint: ignore[rule-id]``
(or a bare ``# lint: ignore`` for every rule). New rules register with
the :func:`~repro.lint.engine.rule` decorator; see
:mod:`repro.lint.rules` for the catalogue.
"""

from repro.lint.engine import (
    LintFinding,
    SuppressionIndex,
    all_rules,
    findings_to_json,
    iter_function_nodes,
    lint_source,
    main,
    rule,
    run_paths,
)
from repro.lint import rules as _rules  # noqa: F401  (registers the catalogue)

__all__ = [
    "LintFinding",
    "SuppressionIndex",
    "all_rules",
    "findings_to_json",
    "iter_function_nodes",
    "lint_source",
    "main",
    "rule",
    "run_paths",
]
