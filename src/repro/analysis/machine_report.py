"""Whole-machine statistics reports.

One call collects every component's counters into a readable dump —
useful in examples, debugging sessions, and for eyeballing where
simulated time and traffic went after a benchmark.
"""

from repro.analysis.report import Table, format_bytes, format_ns
from repro.util.stats import ratio


def machine_report(machine):
    """Return a multi-table report string for any machine."""
    sections = []
    sections.append(_hierarchy_section(machine))
    if hasattr(machine, "device"):
        sections.append(_device_section(machine))
        sections.append(_link_section(machine))
    if hasattr(machine, "memory"):
        sections.append(_media_section(machine.memory))
    if hasattr(machine, "pm"):
        sections.append(_media_section(machine.pm))
    sections.append("simulated time: %s" % format_ns(machine.now_ns))
    return "\n\n".join(sections)


def _hierarchy_section(machine):
    stats = machine.hierarchy.stats
    accesses = (stats.get("l1_hits") + stats.get("l2_hits")
                + stats.get("llc_hits") + stats.get("memory_fetches")
                + stats.get("cross_core_transfers")
                + stats.get("sharer_forwards"))
    table = Table("cache hierarchy", ["metric", "value"])
    table.add_row("line accesses", accesses)
    table.add_row("L1 hit rate",
                  "%.1f%%" % (100 * ratio(stats.get("l1_hits"), accesses)))
    table.add_row("memory fetches", stats.get("memory_fetches"))
    table.add_row("cross-core transfers", stats.get("cross_core_transfers"))
    table.add_row("sharer forwards", stats.get("sharer_forwards"))
    table.add_row("LLC write-backs", stats.get("llc_writebacks"))
    table.add_row("snoops (shared/inv)",
                  "%d / %d" % (stats.get("snoop_shared"),
                               stats.get("snoop_invalidate")))
    return table.render()


def _device_section(machine):
    device = machine.device
    stats = device.stats
    table = Table("PAX device", ["metric", "value"])
    table.add_row("RdShared served", stats.get("rd_shared"))
    table.add_row("RdOwn served", stats.get("rd_own"))
    table.add_row("MemRd / MemWr", "%d / %d" % (stats.get("mem_rd"),
                                                stats.get("mem_wr")))
    table.add_row("dirty evictions buffered", stats.get("dirty_evicts"))
    table.add_row("lines undo-logged", stats.get("lines_logged"))
    table.add_row("persists (blocking/async)",
                  "%d / %d" % (stats.get("persists"),
                               stats.get("persist_asyncs")))
    hbm = device.hbm.stats
    hits = hbm.get("hits")
    table.add_row("HBM hit rate", "%.1f%%" % (
        100 * ratio(hits, hits + hbm.get("misses"))))
    table.add_row("PM line reads", stats.get("pm_line_reads"))
    table.add_row("write-back buffer", "%d lines buffered now"
                  % len(device.writeback))
    table.add_row("forced log pumps",
                  device.writeback.stats.get("forced_log_pumps"))
    table.add_row("committed epoch", machine.pool.committed_epoch)
    return table.render()


def _link_section(machine):
    link = machine.link
    table = Table("interconnect (%s)" % link.name, ["metric", "value"])
    table.add_row("host->device messages", link.stats.get("h2d_messages"))
    table.add_row("device->host messages", link.stats.get("d2h_messages"))
    table.add_row("host->device bytes",
                  format_bytes(link.stats.get("h2d_bytes")))
    table.add_row("device->host bytes",
                  format_bytes(link.stats.get("d2h_bytes")))
    return table.render()


def _media_section(device):
    stats = device.stats
    table = Table("medium (%s)" % device.name, ["metric", "value"])
    table.add_row("bytes read", format_bytes(stats.get("bytes_read")))
    table.add_row("bytes written", format_bytes(stats.get("bytes_written")))
    if stats.get("lines_written"):
        table.add_row("lines written", stats.get("lines_written"))
    return table.render()
