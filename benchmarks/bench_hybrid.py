"""abl-hybrid: PAX vs the paging+PAX hybrid vs pure paging (§5.1).

"Our plan is to compare these approaches in detail for a variety of
applications. We may find that a combination of the approaches works
best." — executed: read-mostly and write-heavy mixes over the pure-PAX
backend, the §5.1 hybrid, and the mprotect baseline, reporting time,
device traffic, faults, and log bytes.
"""

from benchmarks.conftest import BENCH_CACHES
from repro.analysis.report import Table
from repro.baselines import make_backend
from repro.sim.rng import DeterministicRng
from repro.workloads.keys import KeySequence

RECORDS = 6000
OPS = 3000
HEAP = 32 * 1024 * 1024


def build(name):
    kwargs = dict(capacity=1 << 12)
    if name in ("pax", "hybrid"):
        kwargs.update(pool_size=HEAP, log_size=8 * 1024 * 1024)
    else:
        kwargs.update(heap_size=HEAP)
    kwargs.update(BENCH_CACHES)
    return make_backend(name, **kwargs)


def run_mix(name, read_fraction):
    backend = build(name)
    load = KeySequence(RECORDS, "sequential", seed=1)
    for index in range(RECORDS):
        backend.put(load.next(), index)
    backend.persist()
    backend.machine.hierarchy.drop_all()      # cold caches: fair reads
    rng = DeterministicRng(7)
    keys = KeySequence(RECORDS, "uniform", seed=2)
    start = backend.now_ns
    for index in range(OPS):
        key = keys.next()
        if rng.random() < read_fraction:
            backend.get(key)
        else:
            backend.put(key, index)
        if (index + 1) % 128 == 0:
            backend.persist()
    backend.persist()
    elapsed = backend.now_ns - start
    device = getattr(backend.machine, "device", None)
    return {
        "ns_per_op": elapsed / OPS,
        "device_reads": device.stats.get("rd_shared") if device else 0,
        "faults": getattr(backend, "fault_count", 0),
        "log_bytes": (getattr(backend, "log_bytes", 0)
                      or getattr(backend, "wal_bytes", 0)),
    }


def run():
    out = {}
    for name in ("pax", "hybrid", "mprotect"):
        for mix, read_fraction in (("read-mostly", 0.95),
                                   ("write-heavy", 0.20)):
            out[(name, mix)] = run_mix(name, read_fraction)
    return out


def test_hybrid_comparison(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for mix in ("read-mostly", "write-heavy"):
        table = Table("abl-hybrid: %s (95%%/20%% reads)" % mix,
                      ["scheme", "ns/op", "device reads", "page faults",
                       "log KiB"])
        for name in ("pax", "hybrid", "mprotect"):
            row = results[(name, mix)]
            table.add_row(name, row["ns_per_op"], row["device_reads"],
                          row["faults"], row["log_bytes"] / 1024)
        table.show()
    read_mostly = {name: results[(name, "read-mostly")]
                   for name in ("pax", "hybrid", "mprotect")}
    write_heavy = {name: results[(name, "write-heavy")]
                   for name in ("pax", "hybrid", "mprotect")}
    # Read-mostly: the hybrid offloads reads from the device...
    assert read_mostly["hybrid"]["device_reads"] \
        < read_mostly["pax"]["device_reads"] / 2
    # ...while keeping line-granularity logging (far below page logs).
    assert results[("hybrid", "write-heavy")]["log_bytes"] \
        < results[("mprotect", "write-heavy")]["log_bytes"] / 3
    # Write-heavy: the hybrid pays trap costs mprotect also pays; pure
    # PAX avoids them entirely.
    assert write_heavy["pax"]["faults"] == 0
    assert write_heavy["hybrid"]["faults"] > 0
