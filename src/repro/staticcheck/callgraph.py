"""A module-level project index and best-effort call graph.

The flow checkers are mostly intraprocedural, but two questions need
cross-function facts:

* determinism taint: "does calling ``helper()`` return a value derived
  from wall-clock/entropy?" — so a call to a *locally defined or
  imported* tainted function is itself a taint source;
* PM escape: "is this callee defined in the current module, imported
  from a sanctioned owner, or foreign?"

:class:`ProjectIndex` parses every file once, records per-module
imports (local name → source module), top-level functions and methods,
and name-resolved call edges. Resolution is intentionally name-based
and conservative — Python's dynamism makes a sound call graph
impossible, and an over-approximate edge only ever makes the checkers
*more* suspicious, never silently blind.
"""

import ast
import os


def module_key(path):
    """A stable module key for ``path``.

    Files inside a ``repro`` package get their dotted module path
    (``repro.structures.hashmap``); anything else falls back to the
    normalized file path, which is unique enough for fixture trees.
    """
    norm = path.replace(os.sep, "/")
    marker = "/repro/"
    index = norm.rfind(marker)
    if index >= 0:
        relative = "repro/" + norm[index + len(marker):]
    elif norm.startswith("repro/"):
        relative = norm
    else:
        relative = norm
    if relative.endswith(".py"):
        relative = relative[:-3]
    if relative.endswith("/__init__"):
        relative = relative[:-len("/__init__")]
    return relative.replace("/", ".")


class FunctionInfo:
    """One function or method: its AST node and resolved call targets."""

    __slots__ = ("qualname", "node", "calls")

    def __init__(self, qualname, node):
        self.qualname = qualname
        self.node = node
        #: Callee descriptors: ``("local", name)`` for same-module
        #: functions, ``("import", module, name)`` for imported names,
        #: ``("attr", attr)`` for method-style calls.
        self.calls = []

    def __repr__(self):
        return "FunctionInfo(%s, %d calls)" % (self.qualname,
                                               len(self.calls))


class ModuleInfo:
    """Per-module facts: imports, defined functions, call edges."""

    def __init__(self, key, path, tree):
        self.key = key
        self.path = path
        self.tree = tree
        #: local name -> source module (``import x.y`` binds ``x``;
        #: ``from a.b import c as d`` binds ``d`` -> ``a.b``).
        self.imports = {}
        #: local name -> original name in the source module (for
        #: ``from a import b as c`` this maps ``c`` -> ``b``).
        self.import_orig = {}
        #: qualname ("f" or "Cls.f") -> FunctionInfo.
        self.functions = {}
        self._collect()

    def _collect(self):
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = alias.name
                    self.import_orig[local] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = node.module
                    self.import_orig[local] = alias.name
        self._walk_scope(self.tree.body, prefix="")

    def _walk_scope(self, body, prefix):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + node.name
                info = FunctionInfo(qualname, node)
                self._record_calls(node, info)
                self.functions[qualname] = info
                # Plain name too, so ``self.helper()``-style resolution
                # by bare name can find methods.
                self.functions.setdefault(node.name, info)
            elif isinstance(node, ast.ClassDef):
                self._walk_scope(node.body, prefix=node.name + ".")

    def _record_calls(self, func, info):
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Name):
                if callee.id in self.imports:
                    info.calls.append(
                        ("import", self.imports[callee.id],
                         self.import_orig.get(callee.id, callee.id)))
                else:
                    info.calls.append(("local", callee.id))
            elif isinstance(callee, ast.Attribute):
                info.calls.append(("attr", callee.attr))


class ProjectIndex:
    """All modules of one run, keyed by :func:`module_key`."""

    def __init__(self):
        self.modules = {}

    @classmethod
    def build(cls, sources):
        """Index ``sources``: an iterable of ``(path, source)`` pairs.

        Unparseable files are skipped — the engine reports them as
        ``parse-error`` findings separately.
        """
        index = cls()
        for path, source in sources:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
            info = ModuleInfo(module_key(path), path, tree)
            index.modules[info.key] = info
        return index

    def module_for(self, path):
        """The ModuleInfo for ``path`` (or None)."""
        return self.modules.get(module_key(path))

    def resolve(self, module, callee):
        """Resolve a callee descriptor to a FunctionInfo, or None.

        ``("local", f)`` looks in ``module``; ``("import", mod, f)``
        follows the import to another indexed module; ``("attr", a)``
        resolves by bare method name within ``module`` only (methods on
        foreign objects are opaque).
        """
        kind = callee[0]
        if kind == "local":
            return module.functions.get(callee[1])
        if kind == "import":
            target = self.modules.get(callee[1])
            if target is not None:
                return target.functions.get(callee[2])
            return None
        return module.functions.get(callee[1])

    def call_edges(self):
        """Iterate ``(caller_module, caller_func, callee_func)`` over every
        resolvable edge — the module-level call graph."""
        for module in self.modules.values():
            for info in module.functions.values():
                for callee in info.calls:
                    resolved = self.resolve(module, callee)
                    if resolved is not None:
                        yield module, info, resolved
