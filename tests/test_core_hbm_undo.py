"""PAX device internals: HBM cache and the asynchronous undo logger."""

import pytest

from repro.core.config import PaxConfig
from repro.core.hbm import HbmCache
from repro.core.undo import UndoLogger
from repro.errors import LogError, ProtocolError
from repro.pm.device import PmDevice
from repro.pm.log import ENTRY_SIZE, UndoLogRegion


def make_logger(capacity_entries=32, dedup=True):
    device = PmDevice("pm", 1 << 20)
    region = UndoLogRegion(device, 4096, capacity_entries * ENTRY_SIZE)
    config = PaxConfig(dedup_log_entries=dedup)
    return UndoLogger(region, config, start_epoch=1), region


class TestHbm:
    def test_get_put(self):
        hbm = HbmCache(4)
        hbm.put(0x40, b"\x01" * 64)
        assert hbm.get(0x40) == b"\x01" * 64
        assert hbm.get(0x80) is None

    def test_lru_eviction(self):
        hbm = HbmCache(2)
        hbm.put(0x40, b"a" * 64)
        hbm.put(0x80, b"b" * 64)
        hbm.get(0x40)                    # refresh
        hbm.put(0xC0, b"c" * 64)
        assert 0x80 not in hbm           # LRU victim
        assert 0x40 in hbm

    def test_disabled_cache(self):
        hbm = HbmCache(0)
        hbm.put(0x40, b"a" * 64)
        assert hbm.get(0x40) is None
        assert not hbm.enabled

    def test_invalidate(self):
        hbm = HbmCache(4)
        hbm.put(0x40, b"a" * 64)
        hbm.invalidate(0x40)
        assert hbm.get(0x40) is None
        hbm.invalidate(0x40)             # idempotent

    def test_crash_clears(self):
        hbm = HbmCache(4)
        hbm.put(0x40, b"a" * 64)
        hbm.clear()
        assert len(hbm) == 0

    def test_wrong_size_rejected(self):
        with pytest.raises(ProtocolError):
            HbmCache(4).put(0x40, b"short")

    def test_hit_stats(self):
        hbm = HbmCache(4)
        hbm.put(0x40, b"a" * 64)
        hbm.get(0x40)
        hbm.get(0x80)
        assert hbm.stats.get("hits") == 1
        assert hbm.stats.get("misses") == 1


class TestUndoLogger:
    def test_record_is_pending_not_durable(self):
        logger, region = make_logger()
        seq = logger.note_modification(0x5000, b"old" + b"\x00" * 61)
        assert not logger.is_durable(seq)
        assert logger.pending_count == 1
        assert region.used_entries == 0

    def test_drain_makes_durable_in_order(self):
        logger, region = make_logger()
        seq1 = logger.note_modification(0x5000, b"a" * 64)
        seq2 = logger.note_modification(0x5040, b"b" * 64)
        logger.drain_one()
        assert logger.is_durable(seq1)
        assert not logger.is_durable(seq2)
        logger.drain_one()
        assert logger.is_durable(seq2)
        assert region.used_entries == 2

    def test_dedup_same_line_same_epoch(self):
        logger, _region = make_logger(dedup=True)
        seq1 = logger.note_modification(0x5000, b"a" * 64)
        seq2 = logger.note_modification(0x5000, b"b" * 64)
        assert seq1 == seq2
        assert logger.pending_count == 1
        assert logger.stats.get("dedup_hits") == 1

    def test_no_dedup_when_disabled(self):
        logger, _region = make_logger(dedup=False)
        seq1 = logger.note_modification(0x5000, b"a" * 64)
        seq2 = logger.note_modification(0x5000, b"b" * 64)
        assert seq2 > seq1
        assert logger.pending_count == 2

    def test_drain_budget_partial(self):
        logger, _region = make_logger()
        for index in range(4):
            logger.note_modification(0x5000 + index * 64, b"x" * 64)
        written = logger.drain_budget(2 * ENTRY_SIZE)
        assert written == 2 * ENTRY_SIZE
        assert logger.pending_count == 2

    def test_drain_budget_accumulates_fractions(self):
        logger, _region = make_logger()
        logger.note_modification(0x5000, b"x" * 64)
        assert logger.drain_budget(ENTRY_SIZE / 2) == 0
        assert logger.drain_budget(ENTRY_SIZE / 2) == ENTRY_SIZE

    def test_drain_until(self):
        logger, _region = make_logger()
        seqs = [logger.note_modification(0x5000 + i * 64, b"x" * 64)
                for i in range(5)]
        logger.drain_until(seqs[2])
        assert logger.is_durable(seqs[2])
        assert not logger.is_durable(seqs[3])

    def test_drain_until_unknown_seq(self):
        logger, _region = make_logger()
        with pytest.raises(LogError):
            logger.drain_until(99)

    def test_pump_drains_all(self):
        logger, region = make_logger()
        for index in range(3):
            logger.note_modification(0x5000 + index * 64, b"x" * 64)
        assert logger.pump() == 3 * ENTRY_SIZE
        assert logger.pending_count == 0
        assert region.used_entries == 3

    def test_touched_lines_includes_pending_and_durable(self):
        logger, _region = make_logger()
        logger.note_modification(0x5000, b"a" * 64)
        logger.drain_one()
        logger.note_modification(0x5040, b"b" * 64)
        assert logger.touched_lines() == [0x5000, 0x5040]

    def test_epoch_boundary_resets_dedup(self):
        logger, _region = make_logger()
        seq1 = logger.note_modification(0x5000, b"a" * 64)
        logger.pump()
        logger.begin_epoch(2)
        seq2 = logger.note_modification(0x5000, b"b" * 64)
        assert seq2 > seq1
        assert logger.touched_lines() == [0x5000]

    def test_begin_epoch_with_pending_rejected(self):
        logger, _region = make_logger()
        logger.note_modification(0x5000, b"a" * 64)
        with pytest.raises(LogError):
            logger.begin_epoch(2)

    def test_crash_loses_pending_only(self):
        logger, region = make_logger()
        logger.note_modification(0x5000, b"a" * 64)
        logger.drain_one()
        logger.note_modification(0x5040, b"b" * 64)
        lost = logger.on_crash()
        assert lost == 1
        assert region.used_entries == 1     # durable prefix survives

    def test_capacity_accounts_pending_plus_durable(self):
        logger, _region = make_logger(capacity_entries=2)
        logger.note_modification(0x5000, b"a" * 64)
        logger.drain_one()
        logger.note_modification(0x5040, b"b" * 64)
        with pytest.raises(LogError):
            logger.note_modification(0x5080, b"c" * 64)
