"""WalSan: persist-order checking for the software WAL baselines.

The PMDK-style and redo backends promise a different discipline than
PAX: every in-transaction store to the arena must be covered by a WAL
entry *before* it can reach PM, and the commit-cell publish must be
ordered (SFENCE) after every flush and NT store of the transaction.
WalSan checks both, from the same tracer hooks PaxSan uses plus the
WAL/flush-model events:

``san-missing-undo``
    An in-transaction store touched an arena line with no WAL entry for
    it — crash recovery could not undo (or redo) that line.
``san-fence-inversion``
    The commit cell was published while CLWBs or WAL NT stores were
    still unfenced: the commit could reach PM before the data (or log)
    it covers, which is precisely the reordering SFENCE exists to
    forbid.

Attach with ``WalSanitizer().attach(backend)`` where ``backend`` is a
:class:`~repro.baselines.pmdk.PmdkBackend` or
:class:`~repro.baselines.redo.RedoBackend`. Stores outside transactions
(structure initialization, recovery rollback) are exempt by design —
they precede the first commit publish and need no log coverage.
"""

from repro.sanitizer.base import (
    RULE_FENCE_INVERSION,
    RULE_MISSING_UNDO,
    SanitizerBase,
)
from repro.util.bitops import align_down
from repro.util.constants import CACHE_LINE_SIZE


class WalSanitizer(SanitizerBase):
    """WAL-coverage and fence-ordering checks over one WAL backend."""

    def __init__(self, raise_on_violation=True):
        super().__init__(raise_on_violation=raise_on_violation)
        self._heap_base = None
        self._arena_limit = None
        self._tx_active = False
        self._tx_id = None
        self._wal_covered = set()      # heap line addrs logged this tx
        self._unfenced = 0             # flushes/NT stores since last fence

    def attach(self, backend):
        """Hook ``backend``'s machine, WAL, cells, and accessor; returns self."""
        backend.attach_tracer(self)
        return self

    def on_backend_attach(self, backend, layout):
        """Learn the backend's heap geometry (called by attach_tracer)."""
        from repro.libpax.machine import HEAP_PHYS_BASE
        self._heap_base = HEAP_PHYS_BASE
        self._arena_limit = layout.arena_limit

    # -- events --------------------------------------------------------------

    def on_tx_begin(self, tx_id=None):
        """A transaction opened: reset its WAL coverage set."""
        self._tx_active = True
        self._tx_id = tx_id
        self._wal_covered.clear()

    def on_tx_end(self):
        """The transaction closed (commit bookkeeping may follow)."""
        self._tx_active = False

    def on_wal_append(self, tx_id, addr):
        """A WAL entry covers ``addr``; the NT store is unfenced until SFENCE."""
        self._wal_covered.add(align_down(addr, CACHE_LINE_SIZE))
        self._unfenced += 1

    def on_store(self, phys_line):
        """Check an in-transaction arena store has WAL coverage."""
        if self._suspended or not self._tx_active:
            return
        heap_line = phys_line - self._heap_base
        if not 0 <= heap_line < self._arena_limit:
            return
        if heap_line not in self._wal_covered:
            self._report(
                RULE_MISSING_UNDO,
                "in-transaction store with no WAL entry for the line; "
                "recovery cannot undo it",
                addr=heap_line, epoch=self._tx_id)

    def on_clwb(self, addr, num_lines):
        """Count issued write-backs toward the unfenced window."""
        self._unfenced += num_lines

    def on_fence(self):
        """SFENCE: every prior flush/NT store is now ordered."""
        self._unfenced = 0

    def on_tx_commit(self, tx_id):
        """Check the commit publish was fenced against prior persists."""
        if self._suspended:
            return
        if self._unfenced:
            self._report(
                RULE_FENCE_INVERSION,
                "commit cell published with %d unfenced flush(es)/NT "
                "store(s) outstanding" % self._unfenced,
                epoch=tx_id)

    def on_machine_restart(self):
        """Reboot: no transaction survives; the fence window is empty."""
        super().on_machine_restart()
        self._tx_active = False
        self._tx_id = None
        self._wal_covered.clear()
        self._unfenced = 0

    # -- introspection -------------------------------------------------------

    def describe(self):
        """Multi-line summary of the shadow state (for tools.inspect)."""
        lines = [
            "sanitizer:       WalSan (%s mode)"
            % ("raise" if self.raise_on_violation else "collect"),
            "transaction:     %s" % ("open (id=%r)" % (self._tx_id,)
                                     if self._tx_active else "none"),
            "wal coverage:    %d line(s) this tx" % len(self._wal_covered),
            "unfenced ops:    %d" % self._unfenced,
            "violations:      %d" % len(self.findings),
        ]
        for finding in self.findings[:5]:
            lines.append("  %s" % finding)
        return "\n".join(lines)
