"""Checksums used by on-media formats (pool superblock, undo-log entries).

We use CRC-32C (Castagnoli), the polynomial used by real storage stacks
(iSCSI, ext4, Btrfs), implemented with a precomputed table. Undo-log
entries and the pool superblock carry a CRC so that recovery can detect a
torn write at the durability boundary — exactly the failure a crash
simulator must get right.
"""

_CRC32C_POLY = 0x82F63B78


def _build_table():
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _CRC32C_POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32c(data, crc=0):
    """Compute the CRC-32C of ``data`` (bytes-like), seeding with ``crc``.

    The seed lets callers checksum a record incrementally:

    >>> crc32c(b"world", crc=crc32c(b"hello ")) == crc32c(b"hello world")
    True
    """
    crc ^= 0xFFFFFFFF
    for byte in bytes(data):
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def verify(data, expected):
    """Return True if ``data`` checksums to ``expected``."""
    return crc32c(data) == expected
