"""Persistent memory substrate: device, pool format, undo log, flush costs."""

from repro.pm.device import PmDevice
from repro.pm.flush import FlushModel
from repro.pm.log import (
    ENTRY_SIZE,
    LogScanResult,
    UndoEntry,
    UndoLogRegion,
    classify_entry,
    decode_entry,
    encode_entry,
)
from repro.pm.pool import (
    EPOCH_SLOT_OFFSETS,
    POOL_MAGIC,
    POOL_VERSION,
    Pool,
    decode_epoch_record,
    encode_epoch_record,
)

__all__ = [
    "ENTRY_SIZE",
    "EPOCH_SLOT_OFFSETS",
    "FlushModel",
    "LogScanResult",
    "PmDevice",
    "Pool",
    "POOL_MAGIC",
    "POOL_VERSION",
    "UndoEntry",
    "UndoLogRegion",
    "classify_entry",
    "decode_entry",
    "decode_epoch_record",
    "encode_entry",
    "encode_epoch_record",
]
