"""The hash map, tested over a plain accessor (no simulation overhead)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ReproError
from repro.libpax.allocator import PmAllocator
from repro.mem.accessor import OffsetAccessor, RawAccessor
from repro.mem.address_space import AddressSpace
from repro.mem.physical import MemoryDevice
from repro.structures.hashmap import HashMap

ARENA = 1 << 20


def fresh():
    space = AddressSpace()
    space.map_device(4096, MemoryDevice("m", ARENA))
    mem = OffsetAccessor(RawAccessor(space), 4096)
    alloc = PmAllocator.create(mem, ARENA)
    return mem, alloc


class TestBasics:
    def test_put_get(self):
        mem, alloc = fresh()
        table = HashMap.create(mem, alloc, capacity=16)
        assert table.put(1, 100)
        assert table.get(1) == 100
        assert table.get(2) is None
        assert table.get(2, default=-1) == -1

    def test_update_in_place(self):
        mem, alloc = fresh()
        table = HashMap.create(mem, alloc, capacity=16)
        table.put(1, 100)
        assert not table.put(1, 200)      # update, not insert
        assert table.get(1) == 200
        assert len(table) == 1

    def test_remove(self):
        mem, alloc = fresh()
        table = HashMap.create(mem, alloc, capacity=16)
        table.put(1, 100)
        assert table.remove(1)
        assert not table.remove(1)
        assert table.get(1) is None
        assert len(table) == 0

    def test_remove_middle_of_chain(self):
        mem, alloc = fresh()
        table = HashMap.create(mem, alloc, capacity=1)   # everything chains
        for key in range(5):
            table.put(key, key * 10)
        assert table.remove(2)
        assert table.to_dict() == {0: 0, 1: 10, 3: 30, 4: 40}

    def test_contains(self):
        mem, alloc = fresh()
        table = HashMap.create(mem, alloc, capacity=16)
        table.put(7, 1)
        assert 7 in table
        assert 8 not in table

    def test_zero_key_and_value(self):
        mem, alloc = fresh()
        table = HashMap.create(mem, alloc, capacity=16)
        table.put(0, 0)
        assert table.get(0) == 0
        assert 0 in table

    def test_u64_extremes(self):
        mem, alloc = fresh()
        table = HashMap.create(mem, alloc, capacity=16)
        table.put(2**64 - 1, 2**64 - 1)
        assert table.get(2**64 - 1) == 2**64 - 1

    def test_capacity_must_be_power_of_two(self):
        mem, alloc = fresh()
        with pytest.raises(ReproError):
            HashMap.create(mem, alloc, capacity=100)

    def test_attach(self):
        mem, alloc = fresh()
        table = HashMap.create(mem, alloc, capacity=16)
        table.put(3, 33)
        attached = HashMap.attach(mem, alloc, table.root)
        assert attached.get(3) == 33

    def test_attach_garbage_rejected(self):
        mem, alloc = fresh()
        with pytest.raises(ReproError):
            HashMap.attach(mem, alloc, 4096)


class TestResize:
    def test_grow_preserves_contents(self):
        mem, alloc = fresh()
        table = HashMap.create(mem, alloc, capacity=4)
        pairs = {key: key * 3 for key in range(200)}
        for key, value in pairs.items():
            table.put(key, value)
        assert table.capacity > 4
        assert table.to_dict() == pairs

    def test_grow_triggered_by_load_factor(self):
        mem, alloc = fresh()
        table = HashMap.create(mem, alloc, capacity=4)
        for key in range(8):
            table.put(key, key)
        assert table.capacity == 4          # exactly at load 2: no grow
        table.put(8, 8)
        assert table.capacity == 8

    def test_operations_after_grow(self):
        mem, alloc = fresh()
        table = HashMap.create(mem, alloc, capacity=2)
        for key in range(100):
            table.put(key, key)
        assert table.remove(50)
        table.put(50, 999)
        assert table.get(50) == 999


class TestIteration:
    def test_items_complete(self):
        mem, alloc = fresh()
        table = HashMap.create(mem, alloc, capacity=8)
        pairs = {key * 7: key for key in range(50)}
        for key, value in pairs.items():
            table.put(key, value)
        assert dict(table.items()) == pairs
        assert set(table.keys()) == set(pairs)

    def test_empty_iteration(self):
        mem, alloc = fresh()
        table = HashMap.create(mem, alloc, capacity=8)
        assert list(table.items()) == []


class TestModelBased:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(
        st.sampled_from(["put", "remove", "get"]),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=2**64 - 1)), max_size=120))
    def test_matches_python_dict(self, ops):
        mem, alloc = fresh()
        table = HashMap.create(mem, alloc, capacity=4)
        model = {}
        for kind, key, value in ops:
            if kind == "put":
                assert table.put(key, value) == (key not in model)
                model[key] = value
            elif kind == "remove":
                assert table.remove(key) == (key in model)
                model.pop(key, None)
            else:
                assert table.get(key) == model.get(key)
            assert len(table) == len(model)
        assert table.to_dict() == model
