"""tab-writeamp: log write amplification, line vs page granularity.

Paper §1: page-fault schemes "suffer high write amplification since
logging happens at page granularity (4 KiB) rather than the size of the
field being mutated"; PAX logs 64 B lines (96 B entries). This bench
measures log bytes per logical byte for PAX, PMDK, and mprotect under
scattered (uniform) and clustered (sequential) key workloads.
"""

from benchmarks.conftest import bench_backend
from repro.analysis.report import Table
from repro.analysis.writeamp import measure_write_amp

OPS = 1200
RECORDS = 8000


def run(distribution):
    reports = {}
    for name in ("pax", "pmdk", "mprotect"):
        backend = bench_backend(name)
        reports[name] = measure_write_amp(
            backend, op_count=OPS, record_count=RECORDS,
            distribution=distribution, group_size=64)
    return reports


def _show(reports, title):
    table = Table(title, ["backend", "log B/op", "log amp (x logical)",
                          "total amp"])
    for name, report in reports.items():
        table.add_row(name, report.log_bytes / report.ops,
                      report.log_amplification, report.amplification)
    table.show()


def test_writeamp_uniform(benchmark):
    reports = benchmark.pedantic(run, args=("uniform",), rounds=1,
                                 iterations=1)
    _show(reports, "tab-writeamp: uniform keys (scattered mutations)")
    # Page-granularity logging amplifies far beyond line granularity.
    assert reports["mprotect"].log_amplification \
        > 5 * reports["pax"].log_amplification
    # PAX dedups lines per epoch; PMDK logs per-op, so PAX logs no more
    # than PMDK under group commit.
    assert reports["pax"].log_bytes <= reports["pmdk"].log_bytes


def test_writeamp_sequential_locality_helps_paging(benchmark):
    """§5.1 'Combining with Paging': locality is paging's best case."""
    uniform = benchmark.pedantic(run, args=("sequential",), rounds=1,
                                 iterations=1)
    _show(uniform, "tab-writeamp: sequential keys (clustered mutations)")
    scattered = run("uniform")
    # Clustered mutations amortize each logged page over more ops.
    assert uniform["mprotect"].log_amplification \
        < scattered["mprotect"].log_amplification
