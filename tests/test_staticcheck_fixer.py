"""The persist-order auto-fix pass: gate placement, rewriting, the
--fix/--fix-diff CLI, its idempotence guarantee, SARIF output, dead
baseline entries, and the autogen'd autopass structure module."""

import ast
import json
import os
import shutil

import pytest

from repro.errors import LintError
from repro.lint import main as lint_main
from repro.staticcheck import main, run_paths
from repro.staticcheck.autogen import generate, main as autogen_main
from repro.staticcheck.autogen import target_path
from repro.staticcheck.baseline import path_key
from repro.staticcheck.fixer import fix_source
from repro.staticcheck.rewriter import (
    Indentation,
    Insertion,
    apply_edits,
    unified_diff,
)

import repro

SRC_REPRO = os.path.dirname(os.path.abspath(repro.__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "fixtures", "staticcheck")
BAD_FIXTURE = os.path.join(FIXTURES, "structures", "persist_bad.py")


def _findings(path):
    return [f for f in run_paths([str(path)], selected=["persist-order"])]


def _fix(source, style="auto"):
    return fix_source("structures/x.py", source, style=style)


# -- rewriter ---------------------------------------------------------------

def test_apply_edits_inserts_and_indents():
    source = "a = 1\nb = 2\nc = 3\n"
    out = apply_edits(source, [
        Insertion(2, ["begin()"]),
        Insertion(3, ["end()"], order=1),
        Indentation(2, 2),
    ])
    assert out == "a = 1\nbegin()\n    b = 2\nend()\nc = 3\n"


def test_insertions_at_same_anchor_respect_order():
    out = apply_edits("x = 1\n", [
        Insertion(1, ["second"], order=1),
        Insertion(1, ["first"], order=0),
    ])
    assert out == "first\nsecond\nx = 1\n"


def test_insertion_validates_anchor():
    with pytest.raises(LintError):
        Insertion(0, ["nope"])


def test_unified_diff_labels_and_empty_case():
    assert unified_diff("same\n", "same\n", "p.py") == ""
    diff = unified_diff("old\n", "new\n", "./p.py")
    assert diff.startswith("--- a/p.py")
    assert "+++ b/p.py" in diff and "+new" in diff


# -- fix_source placement ---------------------------------------------------

def test_fix_covers_fixture_and_is_idempotent():
    with open(BAD_FIXTURE) as handle:
        source = handle.read()
    fixed, report = fix_source(BAD_FIXTURE, source)
    assert report.changed and report.gates >= 4
    assert not report.unfixable
    # The fixed text passes the checker it was driven by...
    assert ast.parse(fixed)
    # ...and a second run is a no-op: the idempotence guarantee.
    again, second = fix_source(BAD_FIXTURE, fixed)
    assert again == fixed
    assert not second.changed and second.gates == 0


def test_end_inserted_before_in_region_returns():
    fixed, report = _fix(
        "class S:\n"
        "    def put(self, k, v):\n"
        "        node = self._mem.read_u64(k)\n"
        "        while node:\n"
        "            self._mem.write_u64(node, v)\n"
        "            return False\n"
        "        self._mem.write_u64(k, v)\n"
        "        return True\n")
    lines = fixed.splitlines()
    assert not report.unfixable
    ret = lines.index("            return False")
    assert lines[ret - 1].strip() == "self._mem.end()"
    # The trailing close lands after the last store, before the return.
    tail = lines.index("        return True")
    assert lines[tail - 1].strip() == "self._mem.end()"


def test_store_in_loop_hoists_gate_around_the_loop():
    fixed, report = _fix(
        "def fill(mem, n):\n"
        "    for i in range(n):\n"
        "        mem.write_u64(i, 0)\n")
    lines = fixed.splitlines()
    assert not report.unfixable
    head = lines.index("    for i in range(n):")
    assert lines[head - 1] == "    mem.begin()"
    assert lines[-1] == "    mem.end()"


def test_receiver_found_from_class_wide_attribute():
    fixed, report = _fix(
        "class S:\n"
        "    def __init__(self, mem):\n"
        "        self._mem = mem\n"
        "    def stamp(self, k):\n"
        "        self._mem.write_u64(k, 1)\n")
    assert not report.unfixable
    assert "self._mem.begin()" in fixed


def test_unfixable_when_no_receiver_reachable():
    source = (
        "def orphan(k):\n"
        "    mem.write_u64(k, 1)\n")
    # The store goes through a module-global accessor: flagged by the
    # checker, but no gate receiver is reachable from inside the
    # function, so the pass must report rather than guess.
    fixed, report = fix_source("structures/x.py", source)
    assert fixed == source
    assert report.unfixable
    assert "no tx/accessor/wal receiver" in report.unfixable[0][2]


def test_with_style_produces_a_transaction_block():
    fixed, report = _fix(
        "def put(tx, k, v):\n"
        "    tx.write_u64(k, v)\n", style="with")
    assert "with tx.transaction():" in fixed
    assert not report.unfixable
    assert not _fix(fixed, style="with")[1].changed


def test_wal_style_appends_per_store():
    # Only a WAL receiver is reachable (``self._write_u64`` stores give
    # the resolver no accessor to gate on), so the fix logs a pre-image
    # append above each store rather than wrapping a tx region.
    fixed, report = _fix(
        "class S:\n"
        "    def __init__(self, wal):\n"
        "        self._wal = wal\n"
        "    def put(self, k, v):\n"
        "        self._write_u64(k, v)\n"
        "        self._write_u64(k + 1, v)\n", style="wal")
    assert fixed.count("self._wal.append(k, v)") == 1
    assert fixed.count("self._wal.append(k + 1, v)") == 1
    assert not report.unfixable
    assert not _fix(fixed, style="wal")[1].changed


def test_fix_source_rejects_unparseable_input():
    with pytest.raises(LintError):
        fix_source("structures/x.py", "def broken(:\n")


# -- the CLI ----------------------------------------------------------------

def _bad_tree(tmp_path):
    pkg = tmp_path / "structures"
    pkg.mkdir()
    shutil.copy(BAD_FIXTURE, pkg / "persist_bad.py")
    return tmp_path


def test_fix_diff_prints_without_writing(tmp_path, capsys):
    tree = _bad_tree(tmp_path)
    target = tree / "structures" / "persist_bad.py"
    before = target.read_text()
    assert main(["--no-baseline", "--fix-diff", str(tree)]) == 0
    out = capsys.readouterr().out
    assert "persist_bad.py" in out and "+" in out
    assert target.read_text() == before


def test_fix_rewrites_to_checker_clean_and_idempotent(tmp_path, capsys):
    tree = _bad_tree(tmp_path)
    target = tree / "structures" / "persist_bad.py"
    assert main(["--no-baseline", "--fix", str(tree)]) == 0
    assert "inserted" in capsys.readouterr().err
    assert not _findings(target)
    fixed_once = target.read_text()
    # Second run: nothing to fix, file byte-identical.
    assert main(["--no-baseline", "--fix", str(tree)]) == 0
    assert "nothing to fix" in capsys.readouterr().err
    assert target.read_text() == fixed_once


def test_fix_skips_baseline_accepted_files(tmp_path, capsys):
    """--fix must not instrument intentionally-ungated (volatile) code."""
    tree = _bad_tree(tmp_path)
    target = tree / "structures" / "persist_bad.py"
    before = target.read_text()
    count = len(run_paths([str(target)], selected=["persist-order"]))
    baseline = tmp_path / "staticcheck-baseline.txt"
    baseline.write_text("# volatile by design\n"
                        "%s persist-order %d\n"
                        % (path_key(str(target)), count))
    assert main(["--baseline", str(baseline), "--fix", str(tree)]) == 0
    assert "nothing to fix" in capsys.readouterr().err
    assert target.read_text() == before


def test_fix_reports_parse_errors(tmp_path, capsys):
    tree = _bad_tree(tmp_path)
    (tree / "structures" / "broken.py").write_text("def broken(:\n")
    assert main(["--no-baseline", "--fix", str(tree)]) == 1
    assert "parse error" in capsys.readouterr().err


# -- SARIF output -----------------------------------------------------------

def _sarif_of(capsys, exit_code_expected, argv, tool):
    assert tool(argv) == exit_code_expected
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == "2.1.0"
    return report


def test_staticcheck_sarif_output(tmp_path, capsys):
    tree = _bad_tree(tmp_path)
    report = _sarif_of(capsys, 1,
                       ["--no-baseline", "--format", "sarif", str(tree)],
                       main)
    run = report["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.staticcheck"
    rules = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    results = run["results"]
    assert results and all(r["ruleId"] in rules for r in results)
    location = results[0]["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("persist_bad.py")
    assert location["region"]["startLine"] >= 1
    assert location["region"]["startColumn"] >= 1


def test_lint_sarif_output_shares_the_format(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text('"""Doc."""\n')
    report = _sarif_of(capsys, 0, ["--format", "sarif", str(clean)],
                       lint_main)
    assert report["runs"][0]["tool"]["driver"]["name"] == "repro.lint"
    assert report["runs"][0]["results"] == []


# -- dead baseline entries --------------------------------------------------

def test_dead_baseline_entry_fails_the_run(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x):\n    return x\n")
    baseline = tmp_path / "staticcheck-baseline.txt"
    baseline.write_text("# excused long ago, code since fixed\n"
                        "%s persist-order 2\n" % path_key(str(clean)))
    assert main(["--baseline", str(baseline), str(clean)]) == 1
    err = capsys.readouterr().err
    assert "clean.py persist-order is dead" in err


def test_dead_check_ignores_unchecked_files(tmp_path, capsys):
    """Partial-tree runs must not flag entries for files they skipped."""
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x):\n    return x\n")
    baseline = tmp_path / "staticcheck-baseline.txt"
    baseline.write_text("somewhere/else.py persist-order 2\n")
    assert main(["--baseline", str(baseline), str(clean)]) == 0
    assert "dead" not in capsys.readouterr().err


# -- the generated autopass module ------------------------------------------

def test_committed_autopass_gen_matches_regeneration():
    """The committed module is byte-identical to a fresh fixer run."""
    with open(target_path(), encoding="utf-8") as handle:
        committed = handle.read()
    assert committed == generate()


def test_autogen_check_mode_detects_drift(tmp_path, capsys, monkeypatch):
    assert autogen_main(["--check"]) == 0
    assert "matches" in capsys.readouterr().err
    drifted = tmp_path / "_autopass_gen.py"
    drifted.write_text(generate() + "# hand edit\n")
    monkeypatch.setattr("repro.staticcheck.autogen.target_path",
                        lambda: str(drifted))
    assert autogen_main(["--check"]) == 1
    captured = capsys.readouterr()
    assert "drifted" in captured.err and "hand edit" in captured.out


def test_generated_module_is_checker_clean():
    """The headline: auto-instrumented structure code has zero
    persist-order findings, with no baseline entry needed."""
    assert not _findings(target_path())


# -- serve triage (the auto-fix pass has nothing to do there) ---------------

def test_serve_package_is_staticcheck_clean():
    """src/repro/serve was triaged: no findings, no baseline entries.

    The serving layer holds no accessor stores of its own (it drives
    backends through their public put/get/persist API), so persist-order
    has nothing to gate and the taint/escape checkers stay quiet. This
    pins that state: new serve-layer code must stay clean rather than
    grow baseline entries.
    """
    serve = os.path.join(SRC_REPRO, "serve")
    assert run_paths([serve]) == []
