"""Every example must run clean — examples are documentation that rots
fastest, so they get executed in the suite (each finishes in seconds)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py"))


def test_examples_discovered():
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, tmp_path):
    env = dict(os.environ)
    # quickstart writes ht.pool next to itself; run from a temp cwd copy
    # of nothing — the script computes its own path, so instead point it
    # at a scratch pool by pre-removing any stale one.
    pool_artifact = os.path.join(EXAMPLES_DIR, "ht.pool")
    if os.path.exists(pool_artifact):
        os.remove(pool_artifact)
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True, text=True, timeout=600, env=env)
    assert result.returncode == 0, (
        "%s failed:\n%s\n%s" % (script, result.stdout[-2000:],
                                result.stderr[-2000:]))
    assert result.stdout.strip(), "%s produced no output" % script
    if os.path.exists(pool_artifact):
        os.remove(pool_artifact)
