"""Flow-aware static analysis for the repro codebase.

``python -m repro.staticcheck src/repro`` builds a per-function CFG
(:mod:`repro.staticcheck.cfg`), runs forward dataflow over it
(:mod:`repro.staticcheck.dataflow`) plus a module-level call graph
(:mod:`repro.staticcheck.callgraph`), and applies the checker catalogue
(:mod:`repro.staticcheck.checkers`):

``persist-order``
    Accessor stores in ``structures/`` / ``baselines/`` must be
    dominated by an open tx/persist gate on **all** paths — the static
    counterpart of PaxSan's dynamic ``san-missing-undo``.
``det-taint``
    Wall-clock / entropy / iteration-order values must not *flow* into
    simulated state, however many assignments they pass through.
``pm-escape``
    Raw device objects must not escape their owning module without a
    ``repro.mem.accessor`` wrapper (alias-aware, unlike the syntactic
    ``pm-direct-write`` lint rule).

``persist-order`` findings can be *repaired*, not just reported:
``--fix`` / ``--fix-diff`` run the gate-placement pass
(:mod:`repro.staticcheck.placement` + :mod:`repro.staticcheck.fixer`)
that inserts ``begin``/``end``, ``with transaction:``, or
``wal.append`` gates as token-preserving line edits, idempotently.
The same pass generates the ``autopass`` baseline backend (see
``repro.staticcheck.autogen``).

Accepted legacy findings live in ``staticcheck-baseline.txt`` with a
justification each; CI fails only on findings beyond the baseline (and
on *dead* entries whose finding no longer exists). The suppression
syntax (``# lint: ignore[checker-id]``), exit codes (0 clean /
1 findings / 2 usage error), and ``--json`` / ``--format sarif``
output match ``repro.lint`` — one mental model for both tools.
"""

from repro.staticcheck.engine import (
    CheckContext,
    all_checkers,
    check_source,
    checker,
    main,
    run_paths,
    run_paths_details,
)
from repro.staticcheck.baseline import Baseline, path_key, write_baseline
from repro.staticcheck.cfg import CFG, build_cfg
from repro.staticcheck.dataflow import (
    TOP,
    ForwardAnalysis,
    SetIntersectAnalysis,
    SetUnionAnalysis,
    dominators,
    postdominators,
)
from repro.staticcheck.callgraph import ProjectIndex, module_key
from repro.staticcheck import checkers as _checkers  # noqa: F401

__all__ = [
    "Baseline",
    "CFG",
    "CheckContext",
    "ForwardAnalysis",
    "ProjectIndex",
    "SetIntersectAnalysis",
    "SetUnionAnalysis",
    "TOP",
    "all_checkers",
    "build_cfg",
    "check_source",
    "checker",
    "dominators",
    "fix_source",
    "main",
    "module_key",
    "path_key",
    "postdominators",
    "run_paths",
    "run_paths_details",
    "write_baseline",
]


def fix_source(path, source, style="auto"):
    """Auto-insert persist gates; see :func:`repro.staticcheck.fixer.
    fix_source`. Imported lazily to keep the checker import graph
    acyclic."""
    from repro.staticcheck.fixer import fix_source as _fix_source
    return _fix_source(path, source, style=style)
