"""System-level invariants, checked continuously under random workloads.

The PAX design rests on a handful of invariants; these tests drive random
operation sequences and assert them after every step:

* **M-implies-logged** (§3.2): any vPM line dirty anywhere in the host
  hierarchy has an undo record in the device's current epoch. (This is
  what makes `DirtyEvict`-before-log a protocol error.)
* **Gate** (§3.3): a line is written to PM only when its undo record is
  durable — equivalently, every buffered line's record seq is accounted
  and PM writes only happen through the gated paths.
* **Epoch monotonicity**: the committed epoch never regresses, and the
  open epoch is exactly committed+1+pipeline-depth.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.libpax.machine import HEAP_PHYS_BASE
from repro.structures import HashMap
from tests.conftest import make_pax_pool

SETTINGS = settings(max_examples=20, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def assert_m_implies_logged(pool):
    device = pool.machine.device
    for phys_line in pool.machine.hierarchy.dirty_lines():
        pool_addr = device.to_pool(phys_line)
        assert device.undo.seq_for(pool_addr) is not None, (
            "dirty vPM line 0x%x has no undo record this epoch" % phys_line)


def assert_epoch_shape(pool):
    device = pool.machine.device
    committed = pool.machine.pool.committed_epoch
    assert device.epochs.current_epoch \
        == committed + 1 + device.pipeline.depth


class TestInvariantsUnderRandomWorkloads:
    @SETTINGS
    @given(ops=st.lists(st.tuples(
        st.sampled_from(["put", "remove", "get", "persist", "async"]),
        st.integers(0, 25), st.integers(0, 1000)), max_size=60))
    def test_core_invariants_hold_at_every_step(self, ops):
        pool = make_pax_pool()
        table = pool.persistent(HashMap, capacity=16)
        for kind, key, value in ops:
            if kind == "put":
                table.put(key, value)
            elif kind == "remove":
                table.remove(key)
            elif kind == "get":
                table.get(key)
            elif kind == "persist":
                pool.persist()
            else:
                pool.persist_async()
            assert_m_implies_logged(pool)
            assert_epoch_shape(pool)
        pool.persist_barrier()
        pool.persist()
        # After a blocking persist nothing is dirty and nothing pends.
        assert pool.machine.hierarchy.dirty_lines() == []
        assert pool.machine.device.undo.pending_count == 0
        assert len(pool.machine.device.writeback) == 0

    @SETTINGS
    @given(ops=st.integers(10, 80), buffer_lines=st.integers(1, 8))
    def test_gate_survives_tiny_buffers(self, ops, buffer_lines):
        from repro.core.config import PaxConfig
        pool = make_pax_pool(pax_config=PaxConfig(
            writeback_buffer_lines=buffer_lines))
        table = pool.persistent(HashMap, capacity=16)
        for key in range(ops):
            table.put(key, key)
            assert_m_implies_logged(pool)
        # Whatever reached PM mid-epoch must be fully undoable: crash now
        # and the recovered state must be the initial (empty) snapshot.
        baseline = {}
        pool.crash()
        pool.restart()
        recovered = pool.reattach_root(HashMap)
        assert recovered.to_dict() == baseline

    def test_committed_epoch_monotonic_across_everything(self):
        pool = make_pax_pool()
        table = pool.persistent(HashMap, capacity=16)
        seen = [pool.committed_epoch]
        for cycle in range(4):
            table.put(cycle, cycle)
            pool.persist_async()
            seen.append(pool.committed_epoch)
            table.put(cycle + 100, cycle)
            pool.persist()
            seen.append(pool.committed_epoch)
        pool.crash()
        pool.restart()
        seen.append(pool.committed_epoch)
        assert seen == sorted(seen)
