"""Hardened recovery under injected faults.

Covers the tail taxonomy of the undo-log scan (clean / torn / corrupt /
disorder), dual-slot epoch-commit tearing, typed RecoveryError + report
on unrecoverable damage, and a seeded fuzz smoke run.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.recovery import recover_pool
from repro.crashtest.fuzz import run_fuzz
from repro.errors import PoolError, RecoveryError
from repro.faults import BitFlipSpec, FaultInjector, FaultPlan, FaultyPmDevice
from repro.pm.log import (
    ENTRY_SIZE,
    TAIL_CLEAN,
    TAIL_CORRUPT,
    TAIL_DISORDER,
    TAIL_TORN,
    UndoLogRegion,
    encode_entry,
)
from repro.pm.pool import EPOCH_SLOT_OFFSETS, EPOCH_SLOT_SIZE, Pool
from repro.structures import HashMap
from tests.conftest import make_pax_pool, small_cache_kwargs

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

POOL_SIZE = 2 * 1024 * 1024
LINE = 64


def make_region(entries=()):
    device = FaultyPmDevice("pm0", 64 * 1024)
    region = UndoLogRegion(device, 0, 16 * 1024)
    for epoch, addr, data in entries:
        region.append(epoch, addr, data)
    return device, region


def make_faulty_pool():
    device = FaultyPmDevice("pm0", POOL_SIZE)
    pool = make_pax_pool(pm_device=device, pool_size=POOL_SIZE,
                         log_size=64 * 1024, **small_cache_kwargs())
    return pool, device


class TestLogScanClassification:
    def test_clean_tail_and_valid_counter(self):
        _device, region = make_region(
            [(2, 0x1000, b"a" * 64), (2, 0x1040, b"b" * 64)])
        result = region.scan_report(committed_epoch=1)
        assert result.tail == TAIL_CLEAN
        assert len(result.entries) == 2
        assert result.tail_offset == 2 * ENTRY_SIZE
        assert region.stats.counter("entries_valid").value == 2
        assert region.stats.counter("entries_torn").value == 0
        assert region.stats.counter("entries_corrupt").value == 0

    def test_torn_tail_append_is_graceful(self):
        device, region = make_region([(2, 0x1000, b"a" * 64)])
        region.append(2, 0x1040, b"b" * 64)
        device.tear_last_write(ENTRY_SIZE // 2)    # cut the append in half
        result = region.scan_report(committed_epoch=1)
        assert result.tail == TAIL_TORN
        assert len(result.entries) == 1
        assert region.stats.counter("entries_torn").value == 1

    def test_interior_corruption_is_flagged(self):
        device, region = make_region(
            [(2, 0x1000, b"a" * 64), (2, 0x1040, b"b" * 64),
             (2, 0x1080, b"c" * 64)])
        device.flip_bit(1 * ENTRY_SIZE + 20, 3)    # middle entry, epoch field
        result = region.scan_report(committed_epoch=1)
        assert result.tail == TAIL_CORRUPT
        assert len(result.entries) == 1
        assert region.stats.counter("entries_corrupt").value == 1

    def test_corrupt_tail_counts_as_torn(self):
        # A flipped bit in the *last* entry is indistinguishable from a
        # torn append using durable bytes alone: the scan must stay
        # graceful (documented fault-model limitation, docs/faults.md).
        device, region = make_region(
            [(2, 0x1000, b"a" * 64), (2, 0x1040, b"b" * 64)])
        device.flip_bit(1 * ENTRY_SIZE + 20, 3)
        result = region.scan_report(committed_epoch=1)
        assert result.tail == TAIL_TORN
        assert len(result.entries) == 1

    def test_stale_remnant_after_torn_reset_is_clean(self):
        device, region = make_region(
            [(1, 0x1000, b"a" * 64), (1, 0x1040, b"b" * 64)])
        # An epoch-2 entry overwrote slot 0; crash tore the tail poison,
        # exposing the stale epoch-1 entry in slot 1.
        device.write(0, encode_entry(2, 0x2000, b"z" * 64))
        result = region.scan_report(committed_epoch=1)
        assert result.tail == TAIL_CLEAN
        assert [e.epoch for e in result.entries] == [2]

    def test_live_disorder_is_flagged(self):
        _device, region = make_region(
            [(3, 0x1000, b"a" * 64), (2, 0x1040, b"b" * 64)])
        result = region.scan_report(committed_epoch=1)
        assert result.tail == TAIL_DISORDER

    def test_scan_still_yields_entries(self):
        _device, region = make_region([(2, 0x1000, b"a" * 64)])
        assert [e.addr for e in region.scan()] == [0x1000]


class TestTornEpochCommit:
    @SETTINGS
    @given(keep=st.integers(0, EPOCH_SLOT_SIZE - 1))
    def test_torn_slot_write_falls_back(self, keep):
        device = FaultyPmDevice("pm0", 1024 * 1024)
        pool = Pool.format(device, log_size=64 * 1024)
        pool.commit_epoch(1)
        pool.commit_epoch(2)                   # slot 0
        pool.commit_epoch(3)                   # slot 1, then torn:
        device.tear_last_write(keep)
        epoch, slot_used, valid = Pool.open(device).epoch_record()
        assert valid[0]                        # slot 0 never touched
        assert epoch in (2, 3)
        if not valid[1]:
            assert (epoch, slot_used) == (2, 0)

    def test_machine_survives_torn_commit_record(self):
        pool, device = make_faulty_pool()
        table = pool.persistent(HashMap, capacity=16)
        for key in range(8):
            table.put(key, key)
        pool.persist()
        snapshot = dict(table.to_dict())
        committed = pool.committed_epoch
        # Tear the *next* commit's slot write directly: libpax flushes
        # all data before the commit write, so contents must equal the
        # new snapshot even though the epoch record rolled back.
        table.put(0, 999)
        pool.persist()
        slot = EPOCH_SLOT_OFFSETS[pool.committed_epoch % 2]
        device.flip_bit(slot, 5)               # newest slot now invalid
        assert pool.committed_epoch == committed    # fell back
        pool.crash()
        report = pool.restart()
        assert not all(report.epoch_slots_valid)
        assert report.survived_faults
        recovered = pool.reattach_root(HashMap)
        expected = dict(snapshot)
        expected[0] = 999                      # flushed before the commit
        assert recovered.to_dict() == expected

    def test_both_slots_corrupt_is_typed_error(self):
        device = FaultyPmDevice("pm0", 1024 * 1024)
        pool = Pool.format(device, log_size=64 * 1024)
        for offset in EPOCH_SLOT_OFFSETS:
            device.flip_bit(offset, 7)
        with pytest.raises(PoolError):
            pool.epoch_record()
        with pytest.raises(RecoveryError) as excinfo:
            recover_pool(pool)
        report = excinfo.value.report
        assert report is not None
        assert report.epoch_slots_valid == (False, False)
        assert report.epoch_slot_used == -1


class TestRecoveryRaisesOnCorruption:
    def drained_live_entries(self, pool):
        machine = pool.machine
        machine.clock.advance(50_000_000)      # drain device SRAM to PM
        region = UndoLogRegion(machine.pool.device, machine.pool.log_base,
                               machine.pool.log_size)
        committed = machine.pool.committed_epoch
        return region, [e for e in region.scan_report(committed).entries
                        if e.epoch > committed]

    def test_interior_log_corruption_raises_with_report(self):
        pool, device = make_faulty_pool()
        table = pool.persistent(HashMap, capacity=16)
        for key in range(8):
            table.put(key, key)
        pool.persist()
        for key in range(8):
            table.put(key, key + 100)          # live (uncommitted) entries
        region, live = self.drained_live_entries(pool)
        assert len(live) >= 2, "need interior live entries for this test"
        victim = live[0]
        device.flip_bit(pool.machine.pool.log_base + victim.offset + 20, 2)
        pool.crash()
        with pytest.raises(RecoveryError) as excinfo:
            pool.restart()
        report = excinfo.value.report
        assert report is not None
        assert report.log_tail == TAIL_CORRUPT
        assert report.log_entries_corrupt == 1
        assert report.committed_epoch >= 0

    def test_logged_data_flip_is_masked_by_rollback(self):
        pool, device = make_faulty_pool()
        table = pool.persistent(HashMap, capacity=16)
        for key in range(8):
            table.put(key, key)
        pool.persist()
        snapshot = dict(table.to_dict())
        for key in range(8):
            table.put(key, key + 100)
        plan = FaultPlan(bitflips=(BitFlipSpec("logged_data", flips=3),),
                         seed=17)
        _region, live = self.drained_live_entries(pool)
        assert live, "need a live undo record to target"
        injector = FaultInjector(pool.machine, plan)
        injector.crash()
        assert injector.stats.counter("flips_applied").value == 3
        pool.restart()
        recovered = pool.reattach_root(HashMap)
        assert recovered.to_dict() == snapshot


class TestFuzzSmoke:
    def test_fifty_seeded_iterations_hold_the_contract(self):
        stats = run_fuzz(iterations=50, seed=20260806, progress=None)
        assert stats.iterations == 50
        assert stats.ok, stats.summary()
        # The sweep must actually mix fault types, not fuzz a no-op.
        assert stats.plans_torn > 0
        assert stats.plans_flipped > 0
        assert stats.plans_lossy > 0
        assert stats.outcomes["exact"] > 0
