"""Per-operation latency profiles (tail behaviour).

Throughput curves hide the cost structure group commit creates: with a
blocking ``persist()`` every Nth request absorbs the whole epoch commit,
so p50 is excellent and p99 is terrible. The pipelined persist (§6
extension) exists precisely to flatten that tail. This module measures
request latencies in simulation and reports the distribution.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.util.stats import Histogram


@dataclass
class LatencyProfile:
    """Distribution of per-request simulated latencies."""

    name: str
    histogram: Histogram = field(default_factory=lambda: Histogram("req_ns"))

    def record(self, latency_ns):
        """Record one request's latency."""
        self.histogram.record(latency_ns)

    @property
    def count(self):
        """Requests recorded."""
        return self.histogram.count

    @property
    def mean_ns(self):
        """Mean request latency in ns."""
        return self.histogram.mean

    def percentile(self, p):
        """p-th percentile request latency in ns."""
        return self.histogram.percentile(p)

    def summary(self) -> Dict[str, float]:
        """p50/p95/p99/max summary for reports."""
        return {
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.histogram.max if self.count else 0.0,
            "mean": self.mean_ns,
        }


def measure_request_latencies(backend, keys, values, group_size=64,
                              persist_mode="blocking"):
    """Run puts measuring each *request's* latency, persists included.

    A request is one put; when the group boundary falls on it, the
    durability action joins that request's latency — blocking
    ``persist()``, pipelined ``persist_async()``, or nothing
    (``persist_mode="none"``, for per-op-durable schemes whose commit is
    already inside put). Returns a :class:`LatencyProfile`.
    """
    profile = LatencyProfile(backend.name)
    clock = backend.machine.clock
    pool = getattr(backend, "pool", None)
    for index, (key, value) in enumerate(zip(keys, values)):
        start = clock.now_ns
        backend.put(key, value)
        if (index + 1) % group_size == 0:
            if persist_mode == "blocking":
                backend.persist()
            elif persist_mode == "async":
                pool.persist_async()
        profile.record(clock.now_ns - start)
    if persist_mode == "async":
        pool.persist_barrier()
        pool.persist()
    elif persist_mode == "blocking":
        backend.persist()
    return profile
