"""The pool inspector: offline, read-only, crash-aware."""

import pytest

from repro.errors import PoolError
from repro.structures import HashMap
from repro.tools.inspect import format_report, inspect_pool, main
from tests.conftest import make_pax_pool


def make_pool_file(tmp_path, crashed=False):
    path = str(tmp_path / "t.pool")
    pool = make_pax_pool(path=path)
    table = pool.persistent(HashMap, capacity=64)
    for key in range(20):
        table.put(key, key)
    pool.persist()
    if crashed:
        for key in range(20, 30):
            table.put(key, key)
        # Drain records to PM, then crash: durable records, no commit.
        pool.machine.device.undo.pump()
        pool.crash()
    pool.machine.pool.sync()
    return path


class TestInspect:
    def test_clean_pool(self, tmp_path):
        info = inspect_pool(make_pool_file(tmp_path))
        assert not info["needs_recovery"]
        assert info["committed_epoch"] >= 2
        assert info["root_kind"] == "single structure"
        assert info["root_ptr"] > 0
        assert info["allocator"]["heap_used_bytes"] > 0
        assert 0 < info["allocator"]["utilization"] < 1

    def test_crashed_pool_flags_recovery(self, tmp_path):
        info = inspect_pool(make_pool_file(tmp_path, crashed=True))
        assert info["needs_recovery"]
        live = {epoch: count
                for epoch, count in info["log_entries_by_epoch"].items()
                if epoch > info["committed_epoch"]}
        assert live and sum(live.values()) > 0

    def test_report_format(self, tmp_path):
        report = format_report(inspect_pool(make_pool_file(tmp_path,
                                                           crashed=True)))
        assert "recovery pending" in report
        assert "LIVE" in report
        assert "allocator" in report

    def test_inspection_is_read_only(self, tmp_path):
        path = make_pool_file(tmp_path)
        before = open(path, "rb").read()
        inspect_pool(path)
        assert open(path, "rb").read() == before

    def test_recovered_pool_reads_clean(self, tmp_path):
        path = make_pool_file(tmp_path, crashed=True)
        assert inspect_pool(path)["needs_recovery"]
        # Reopen through libpax (recovery runs), sync, re-inspect.
        pool = make_pax_pool(path=path)
        pool.machine.pool.sync()
        assert not inspect_pool(path)["needs_recovery"]

    def test_garbage_file_rejected(self, tmp_path):
        path = str(tmp_path / "junk.pool")
        with open(path, "wb") as handle:
            handle.write(b"\xff" * 64 * 1024)
        with pytest.raises(PoolError):
            inspect_pool(path)


class TestCli:
    def test_main_ok(self, tmp_path, capsys):
        path = make_pool_file(tmp_path)
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "committed epoch" in out

    def test_main_usage(self, capsys):
        assert main([]) == 2

    def test_main_missing_file(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.pool")]) == 1
