"""repro.serve — the chaos-hardened serving harness.

A deterministic, sim-time serving frontend over PAX pools: simulated
clients submit YCSB-derived request streams through admission control
(bounded queue, typed backpressure, deterministic backoff-and-retry);
persist requests coalesce into group commits (one epoch commit per
batch); and a chaos controller schedules mid-traffic crash/recover
cycles and link storms, with SLO accounting (tail latencies, error
budgets, recovery-time histograms) exported through ``repro.obs``.

See docs/serving.md for the architecture and the drill contract.
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.batch import GroupCommitBatcher
from repro.serve.chaos import ChaosController, build_timeline
from repro.serve.clients import (
    Request,
    RetryPolicy,
    SimClient,
    build_client_script,
)
from repro.serve.harness import (
    ServeConfig,
    ServeHarness,
    ServeReport,
    run_drill,
)
from repro.serve.slo import REQUEST_KINDS, SloTracker

__all__ = [
    "AdmissionQueue",
    "ChaosController",
    "GroupCommitBatcher",
    "REQUEST_KINDS",
    "Request",
    "RetryPolicy",
    "ServeConfig",
    "ServeHarness",
    "ServeReport",
    "SimClient",
    "SloTracker",
    "build_client_script",
    "build_timeline",
    "run_drill",
]
