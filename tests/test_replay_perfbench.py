"""Perfbench's replay engine: equivalence wiring, caching, comparison
report shape, and the speedup the replay engine exists to deliver."""

import time

import pytest

from repro.errors import ConfigError
from repro.perfbench import (COMPARE_SCHEMA, _TRACE_CACHE,
                             _record_cell_trace, build_backend,
                             compare, compare_report, run_cell,
                             run_matrix)
from repro.replay import record, replay_trace
from repro.replay import format as fmt
from repro.sim.rng import DeterministicRng


class TestReplayCells:
    def test_replay_cell_matches_access_sim_ns(self):
        access = run_cell("store_heavy", "pax", ops=300, records=64)
        replay = run_cell("store_heavy", "pax", ops=300, records=64,
                          engine="replay")
        assert access["engine"] == "access"
        assert replay["engine"] == "replay"
        assert replay["sim_ns"] == access["sim_ns"]
        assert replay["ops"] == access["ops"]

    def test_replay_cell_repeats_deterministic(self):
        cell = run_cell("mixed", "pmdk", ops=200, records=32, repeats=3,
                        engine="replay")
        assert cell["sim_ns"] > 0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="engine"):
            run_cell("store_heavy", "pax", ops=10, records=4,
                     engine="vectorized")

    def test_tracer_with_replay_rejected(self):
        with pytest.raises(ConfigError, match="per-access"):
            run_cell("store_heavy", "pax", ops=10, records=4,
                     engine="replay", tracer=object())

    def test_trace_recorded_once_per_config(self):
        key = ("load_heavy", "dram", 150, 32, 5)
        _TRACE_CACHE.pop(key, None)
        trace1, sim1 = _record_cell_trace(*key)
        trace2, sim2 = _record_cell_trace(*key)
        assert trace1 is trace2
        assert sim1 == sim2

    def test_matrix_engine_axis(self):
        report = run_matrix(workloads=("store_heavy",),
                            backends=("dram",), ops=100, records=16,
                            engines=("access", "replay"))
        engines = [cell["engine"] for cell in report["results"]]
        assert engines == ["access", "replay"]
        assert report["config"]["engines"] == ["access", "replay"]
        sims = {cell["sim_ns"] for cell in report["results"]}
        assert len(sims) == 1


class TestCompareReport:
    def _report(self):
        return run_matrix(workloads=("store_heavy",),
                          backends=("dram", "pax"), ops=100, records=16,
                          engines=("access", "replay"))

    def test_self_compare_clean_and_shaped(self):
        report = self._report()
        grade = compare_report(report, report)
        assert grade["schema"] == COMPARE_SCHEMA
        assert grade["problems"] == []
        assert grade["same_config"] is True
        assert len(grade["cells"]) == 4
        for cell in grade["cells"]:
            assert cell["engine"] in ("access", "replay")
            assert cell["wall_s_delta"] == 0.0
            assert cell["throughput_ratio"] == 1.0
            assert cell["regressed"] is False
            assert cell["sim_ns_match"] is True

    def test_engineless_baseline_cells_are_access(self):
        # BENCH_PR3.json predates the engine axis; its cells must keep
        # matching the access cells of a new-format run.
        report = self._report()
        baseline = {
            "config": dict(report["config"]),
            "results": [
                {k: v for k, v in cell.items() if k != "engine"}
                for cell in report["results"]
                if cell["engine"] == "access"
            ],
        }
        grade = compare_report(report, baseline)
        matched = {(c["workload"], c["backend"], c["engine"])
                   for c in grade["cells"]}
        assert all(engine == "access" for _, _, engine in matched)
        assert grade["problems"] == []

    def test_regression_reported_per_cell(self):
        report = self._report()
        forged = {
            "config": dict(report["config"]),
            "results": [dict(cell) for cell in report["results"]],
        }
        for cell in forged["results"]:
            cell["ops_per_sec"] *= 1e6
        grade = compare_report(report, forged)
        assert len(grade["problems"]) == 4
        assert all(cell["regressed"] for cell in grade["cells"])
        assert compare(report, forged) == grade["problems"]


class TestSpeedup:
    def test_replay_beats_per_access_on_store_heavy_pax(self):
        # The acceptance-criterion speedup measurement (docs record the
        # full-size ratio); asserted here with margin so scheduler noise
        # on a shared CI runner cannot flake the suite.
        ops, records, seed = 20000, 2000, 42

        def drive(live, recorder=None):
            rng = DeterministicRng(seed)
            for i in range(records):
                live.put(i, i)
            if recorder is not None:
                recorder.mark(fmt.MARK_TIMED)
            start = time.perf_counter()
            for i in range(ops):
                live.put(rng.randint(0, records - 1), i)
            return time.perf_counter() - start

        trace = record(build_backend("pax"), drive)
        # Warm-up replay amortizes the one-time column decode, matching
        # perfbench's record-once-replay-many shape.
        replay_trace(trace, build_backend("pax"))
        access_wall = min(drive(build_backend("pax")) for _ in range(2))
        replay_wall = min(
            replay_trace(trace, build_backend("pax"),
                         stopwatch=time.perf_counter).wall_s_timed
            for _ in range(2))
        assert replay_wall < access_wall / 3.0, (
            "replay %.3fs vs per-access %.3fs: below the 3x floor"
            % (replay_wall, access_wall))
