"""The B-tree: CLRS insert/delete, ordering invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ReproError
from repro.libpax.allocator import PmAllocator
from repro.mem.accessor import OffsetAccessor, RawAccessor
from repro.mem.address_space import AddressSpace
from repro.mem.physical import MemoryDevice
from repro.structures.btree import BTree, MAX_KEYS, MIN_KEYS

ARENA = 2 << 20


def fresh():
    space = AddressSpace()
    space.map_device(4096, MemoryDevice("m", ARENA))
    mem = OffsetAccessor(RawAccessor(space), 4096)
    return mem, PmAllocator.create(mem, ARENA)


def tree_with(keys):
    mem, alloc = fresh()
    tree = BTree.create(mem, alloc)
    for key in keys:
        tree.put(key, key * 2)
    return tree


class TestBasics:
    def test_put_get(self):
        tree = tree_with([5, 1, 9])
        assert tree.get(5) == 10
        assert tree.get(2) is None
        assert tree.get(2, default=-1) == -1
        assert len(tree) == 3

    def test_update(self):
        mem, alloc = fresh()
        tree = BTree.create(mem, alloc)
        assert tree.put(1, 10)
        assert not tree.put(1, 20)
        assert tree.get(1) == 20
        assert len(tree) == 1

    def test_splits_on_many_inserts(self):
        tree = tree_with(range(200))
        assert len(tree) == 200
        for key in range(200):
            assert tree.get(key) == key * 2

    def test_reverse_insert_order(self):
        tree = tree_with(range(199, -1, -1))
        assert list(tree.keys()) == list(range(200))

    def test_update_key_in_internal_node(self):
        tree = tree_with(range(50))
        # After splits, some keys live in internal nodes; update them all.
        for key in range(50):
            tree.put(key, key + 1000)
        for key in range(50):
            assert tree.get(key) == key + 1000
        assert len(tree) == 50

    def test_check_order(self):
        tree = tree_with([5, 3, 8, 1, 9, 2])
        assert tree.check_order()

    def test_attach(self):
        mem, alloc = fresh()
        tree = BTree.create(mem, alloc)
        tree.put(1, 2)
        attached = BTree.attach(mem, alloc, tree.root)
        assert attached.get(1) == 2

    def test_attach_garbage_rejected(self):
        mem, alloc = fresh()
        with pytest.raises(ReproError):
            BTree.attach(mem, alloc, 4096)


class TestIteration:
    def test_items_sorted(self):
        tree = tree_with([7, 2, 9, 4, 1])
        assert [key for key, _v in tree.items()] == [1, 2, 4, 7, 9]

    def test_range_query(self):
        tree = tree_with(range(0, 100, 3))
        window = [key for key, _v in tree.items(lo=10, hi=40)]
        assert window == [key for key in range(0, 100, 3) if 10 <= key <= 40]

    def test_to_dict(self):
        tree = tree_with(range(30))
        assert tree.to_dict() == {key: key * 2 for key in range(30)}


class TestDelete:
    def test_delete_from_leaf(self):
        tree = tree_with([1, 2, 3])
        assert tree.remove(2)
        assert tree.get(2) is None
        assert len(tree) == 2

    def test_delete_absent(self):
        tree = tree_with([1])
        assert not tree.remove(99)
        assert len(tree) == 1

    def test_delete_everything(self):
        keys = list(range(100))
        tree = tree_with(keys)
        for key in keys:
            assert tree.remove(key), key
            assert tree.get(key) is None
        assert len(tree) == 0
        assert list(tree.keys()) == []

    def test_delete_reverse_order(self):
        keys = list(range(100))
        tree = tree_with(keys)
        for key in reversed(keys):
            assert tree.remove(key)
        assert len(tree) == 0

    def test_delete_internal_keys(self):
        tree = tree_with(range(64))
        # Delete in a shuffled-but-deterministic order to hit the borrow/
        # merge paths.
        order = [(key * 37) % 64 for key in range(64)]
        seen = set()
        for key in order:
            if key in seen:
                continue
            seen.add(key)
            assert tree.remove(key)
            tree.check_order()
        assert len(tree) == 0

    def test_tree_shrinks_root(self):
        tree = tree_with(range(30))
        for key in range(29):
            tree.remove(key)
        assert tree.get(29) == 58


class TestModelBased:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(
        st.sampled_from(["put", "remove", "get"]),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=2**32)), max_size=150))
    def test_matches_python_dict(self, ops):
        mem, alloc = fresh()
        tree = BTree.create(mem, alloc)
        model = {}
        for kind, key, value in ops:
            if kind == "put":
                assert tree.put(key, value) == (key not in model)
                model[key] = value
            elif kind == "remove":
                assert tree.remove(key) == (key in model)
                model.pop(key, None)
            else:
                assert tree.get(key) == model.get(key)
        assert tree.to_dict() == model
        assert list(tree.keys()) == sorted(model)


def test_constants_consistent():
    assert MIN_KEYS == (MAX_KEYS + 1) // 2 - 1
