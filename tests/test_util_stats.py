"""Counters, histograms, and stat groups."""

import pytest

from repro.errors import StatsError
from repro.util.stats import Counter, Histogram, StatGroup, ratio


class TestCounter:
    def test_add_and_value(self):
        counter = Counter("x")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_negative_rejected(self):
        with pytest.raises(StatsError):
            Counter("x").add(-1)

    def test_reset(self):
        counter = Counter("x")
        counter.add(3)
        counter.reset()
        assert counter.value == 0


class TestHistogram:
    def test_mean_min_max(self):
        hist = Histogram("lat")
        for value in (1.0, 2.0, 3.0):
            hist.record(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(2.0)
        assert hist.min == 1.0
        assert hist.max == 3.0

    def test_stddev(self):
        hist = Histogram("lat")
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            hist.record(value)
        assert hist.stddev == pytest.approx(2.0)

    def test_percentile(self):
        hist = Histogram("lat")
        for value in range(1, 101):
            hist.record(float(value))
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0

    def test_empty_histogram(self):
        hist = Histogram("lat")
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0

    def test_reservoir_bounded(self):
        hist = Histogram("lat")
        for value in range(10000):
            hist.record(float(value))
        assert len(hist._reservoir) <= Histogram.RESERVOIR_SIZE
        assert hist.count == 10000

    def test_reset_restores_pristine_state(self):
        hist = Histogram("lat")
        for value in (1.0, 5.0, 9.0):
            hist.record(value)
        hist.percentile(50)            # populate the sorted cache too
        hist.reset()
        assert hist.count == 0
        assert hist.total == 0.0
        assert hist.mean == 0.0
        assert hist.stddev == 0.0
        assert hist.percentile(50) == 0.0
        # A reset histogram must behave exactly like a fresh one.
        hist.record(3.0)
        assert (hist.count, hist.mean, hist.min, hist.max) == (1, 3.0, 3.0, 3.0)
        assert hist.percentile(50) == 3.0

    def test_percentile_cache_invalidated_by_new_samples(self):
        hist = Histogram("lat")
        for value in (10.0, 20.0, 30.0):
            hist.record(value)
        assert hist.percentile(50) == 20.0
        assert hist.percentile(100) == 30.0   # served from the cache
        hist.record(100.0)
        # New sample must invalidate the cached sort.
        assert hist.percentile(100) == 100.0
        assert hist.percentile(0) == 10.0


class TestStatGroup:
    def test_counter_creation_and_get(self):
        group = StatGroup("owner")
        group.counter("hits").add(2)
        assert group.get("hits") == 2
        assert group.get("absent") == 0

    def test_counters_dict(self):
        group = StatGroup("owner")
        group.counter("a").add(1)
        group.counter("b").add(2)
        assert group.counters() == {"a": 1, "b": 2}

    def test_reset_all(self):
        group = StatGroup("owner")
        group.counter("a").add(1)
        group.histogram("h").record(5)
        group.reset()
        assert group.get("a") == 0
        assert group.histogram("h").count == 0

    def test_snapshot_includes_histograms(self):
        group = StatGroup("owner")
        group.histogram("h").record(4)
        snap = group.snapshot()
        assert snap["h.count"] == 1
        assert snap["h.mean"] == 4


def test_ratio():
    assert ratio(1, 2) == 0.5
    assert ratio(1, 0) == 0.0
