"""Shared write-ahead-log machinery for the software baselines.

The PMDK-style, compiler-pass, and redo backends all need: a log region
carved out of the top of the PM heap, written with non-temporal stores
(bypassing the CPU caches, so an entry is durable the moment it is
written), a transaction-commit cell updated with a single atomic 8-byte
store, and a root-pointer cell so reopening after a crash can find the
structure.

Heap layout (structure-space offsets)::

    [0, 64)                      reserved (NULL guard)
    [64, arena_limit)            allocator arena (structure + metadata)
    [arena_limit, commit_cell)   WAL entries (96 B each, reusing the
                                 pool undo-entry format with tx_id in the
                                 epoch field)
    commit_cell  = heap - 128    last committed tx id (atomic u64)
    root_cell    = heap - 64     structure root offset (atomic u64)
"""

import struct

from repro.errors import LogError
from repro.libpax.machine import HEAP_PHYS_BASE
from repro.pm.log import ENTRY_SIZE, decode_entry, encode_entry
from repro.util.bitops import align_down
from repro.util.constants import CACHE_LINE_SIZE
from repro.util.stats import StatGroup

_U64 = struct.Struct("<Q")


class WalLayout:
    """Computes the reserved offsets for a machine's heap."""

    def __init__(self, heap_size, wal_size):
        self.root_cell = heap_size - CACHE_LINE_SIZE
        self.commit_cell = heap_size - 2 * CACHE_LINE_SIZE
        self.wal_base = align_down(self.commit_cell - wal_size,
                                   CACHE_LINE_SIZE)
        self.wal_size = self.commit_cell - self.wal_base
        self.arena_limit = self.wal_base
        if self.arena_limit < 4096:
            raise LogError("heap too small for a %d-byte WAL" % wal_size)


class DurableCells:
    """Atomic u64 cells written straight to PM (past the caches)."""

    def __init__(self, machine, layout):
        self._space = machine.space
        self._layout = layout
        #: Optional tracer told when the commit cell is published.
        self.tracer = None

    def _read(self, offset):
        return _U64.unpack(self._space.read(HEAP_PHYS_BASE + offset, 8))[0]

    def _write(self, offset, value):
        self._space.write(HEAP_PHYS_BASE + offset, _U64.pack(value))

    @property
    def committed_tx(self):
        """Id of the last durably committed transaction/epoch."""
        return self._read(self._layout.commit_cell)

    @committed_tx.setter
    def committed_tx(self, value):
        if self.tracer is not None:
            self.tracer.on_tx_commit(value)
        self._write(self._layout.commit_cell, value)

    @property
    def root(self):
        """Structure root offset (0 = unpublished)."""
        return self._read(self._layout.root_cell)

    @root.setter
    def root(self, value):
        self._write(self._layout.root_cell, value)


class Wal:
    """A synchronous WAL written with NT stores directly to PM.

    Reuses the pool undo-entry encoding; the ``epoch`` field carries the
    transaction id, and the payload carries either the *old* line (undo
    schemes) or the *new* line (redo scheme).
    """

    def __init__(self, machine, layout, flush):
        self._space = machine.space
        self._layout = layout
        self._flush = flush
        self.write_offset = 0
        #: Optional tracer told about appends and resets.
        self.tracer = None
        self.stats = StatGroup("wal")

    @property
    def capacity_entries(self):
        """Maximum entries the WAL region holds."""
        return self._layout.wal_size // ENTRY_SIZE

    def append(self, tx_id, addr, data, fence=True):
        """Durably append one entry; charges NT-store + optional SFENCE."""
        if self.write_offset + ENTRY_SIZE > self._layout.wal_size:
            raise LogError("WAL full (%d entries); transaction too large"
                           % self.capacity_entries)
        blob = encode_entry(tx_id, addr, data)
        self._space.write(
            HEAP_PHYS_BASE + self._layout.wal_base + self.write_offset, blob)
        self.write_offset += ENTRY_SIZE
        # Terminate the scan at the true tail (see UndoLogRegion.append).
        if self.write_offset + ENTRY_SIZE <= self._layout.wal_size:
            self._space.write(
                HEAP_PHYS_BASE + self._layout.wal_base + self.write_offset,
                bytes(24))
        self.stats.counter("appends").add(1)
        self.stats.counter("bytes").add(ENTRY_SIZE)
        if self.tracer is not None:
            self.tracer.on_wal_append(tx_id, addr)
        # The NT store itself pipelines; ordering it before the following
        # structure store is what costs (paper §2).
        if fence:
            self._flush.sfence()
        return self.write_offset - ENTRY_SIZE

    def reset(self):
        """Rewind after commit; poisons the first header like the pool log."""
        self._space.write(HEAP_PHYS_BASE + self._layout.wal_base, bytes(24))
        self.write_offset = 0
        self.stats.counter("resets").add(1)
        if self.tracer is not None:
            self.tracer.on_wal_reset()

    def scan(self):
        """Yield durable entries in order (recovery path; trusts only PM)."""
        offset = 0
        while offset + ENTRY_SIZE <= self._layout.wal_size:
            blob = self._space.read(
                HEAP_PHYS_BASE + self._layout.wal_base + offset, ENTRY_SIZE)
            entry = decode_entry(blob, offset)
            if entry is None:
                return
            yield entry
            offset += ENTRY_SIZE
