"""Exception hierarchy for the PAX reproduction.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch one base class. Subclasses are grouped by the
subsystem that raises them.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AddressError(ReproError):
    """An access targeted an unmapped, misaligned, or out-of-range address."""


class ProtectionError(ReproError):
    """A store hit a read-only page (used by the mprotect baseline)."""

    def __init__(self, addr, message=None):
        self.addr = addr
        super().__init__(message or "write to protected page at 0x%x" % addr)


class PoolError(ReproError):
    """A pool file is missing, corrupt, or version-incompatible."""


class LogError(ReproError):
    """The undo log is corrupt or an append exceeded its capacity."""


class AllocationError(ReproError):
    """The persistent allocator could not satisfy a request."""


class ProtocolError(ReproError):
    """A coherence/CXL message violated the protocol state machine."""


class CrashedError(ReproError):
    """An operation was attempted on a machine that has simulated a crash."""


class LinkError(ReproError):
    """A link-level transfer failed permanently (retransmit budget spent)."""


class RecoveryError(ReproError):
    """Recovery could not restore a consistent snapshot.

    Carries the partial :class:`~repro.core.recovery.RecoveryReport` (when
    one exists) so callers can see how far recovery got — how many records
    were valid, where the log went bad, which epoch slots survived —
    before the error was raised.
    """

    def __init__(self, message, report=None):
        super().__init__(message)
        self.report = report


class ConfigError(ReproError):
    """A component was constructed with invalid configuration."""
